#include "core/sss_mapper.h"

#include <gtest/gtest.h>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/random_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem make_problem(const std::string& config, std::uint64_t seed) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config(config), seed));
}

TEST(Sss, ProducesValidPermutation) {
  const ObmProblem p = make_problem("C1", 1);
  SortSelectSwapMapper sss;
  EXPECT_TRUE(sss.map(p).is_valid_permutation(p.num_threads()));
}

TEST(Sss, Deterministic) {
  const ObmProblem p = make_problem("C2", 2);
  SortSelectSwapMapper a, b;
  EXPECT_EQ(a.map(p).thread_to_tile, b.map(p).thread_to_tile);
}

TEST(Sss, SortedTilesAscendingByTc) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  const auto sorted = SortSelectSwapMapper::sorted_tiles(model);
  ASSERT_EQ(sorted.size(), 64u);
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LE(model.tc(sorted[i]), model.tc(sorted[i + 1]));
  }
}

// The headline property (paper Fig. 9 / Table 4): on every configuration,
// SSS has lower max-APL and far lower dev-APL than Global.
TEST(Sss, BeatsGlobalOnBalanceForAllConfigs) {
  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(8);
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                       synthesize_workload(spec, 33));
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport g = evaluate(p, global.map(p));
    const LatencyReport s = evaluate(p, sss.map(p));
    EXPECT_LT(s.max_apl, g.max_apl) << spec.name;
    EXPECT_LT(s.dev_apl, g.dev_apl * 0.5) << spec.name;
  }
}

// Performance-awareness (paper Fig. 10): SSS sacrifices only a small g-APL
// overhead relative to the exact Global optimum.
TEST(Sss, SmallGaplOverhead) {
  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(8);
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                       synthesize_workload(spec, 44));
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const double g = evaluate(p, global.map(p)).g_apl;
    const double s = evaluate(p, sss.map(p)).g_apl;
    EXPECT_LT(s, g * 1.10) << spec.name;  // paper reports < 3.82%
  }
}

TEST(Sss, BeatsRandomAverageOnMaxApl) {
  const ObmProblem p = make_problem("C1", 3);
  SortSelectSwapMapper sss;
  const double s = evaluate(p, sss.map(p)).max_apl;
  RandomMapper random(5);
  double avg = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    avg += evaluate(p, random.map(p)).max_apl;
  }
  EXPECT_LT(s, avg / trials);
}

// Ablation ordering: each stage may only improve (or preserve) max-APL,
// since window swaps and the final SAM are greedy descent steps.
TEST(Sss, StagesMonotonicallyImprove) {
  for (const char* cfg : {"C1", "C4", "C7"}) {
    const ObmProblem p = make_problem(cfg, 6);
    SortSelectSwapMapper select_only(
        SssOptions{.window_swaps = false, .final_sam = false});
    SortSelectSwapMapper no_final(
        SssOptions{.window_swaps = true, .final_sam = false});
    SortSelectSwapMapper full;

    const double obj_select = evaluate(p, select_only.map(p)).max_apl;
    const double obj_swap = evaluate(p, no_final.map(p)).max_apl;
    const double obj_full = evaluate(p, full.map(p)).max_apl;
    EXPECT_LE(obj_swap, obj_select + 1e-9) << cfg;
    EXPECT_LE(obj_full, obj_swap + 1e-9) << cfg;
  }
}

TEST(Sss, WindowSizeTwoStillValid) {
  const ObmProblem p = make_problem("C3", 7);
  SortSelectSwapMapper sss(SssOptions{.window_size = 2});
  const Mapping m = sss.map(p);
  EXPECT_TRUE(m.is_valid_permutation(p.num_threads()));
}

TEST(Sss, InvalidWindowSizeRejected) {
  const ObmProblem p = make_problem("C1", 8);
  SortSelectSwapMapper sss(SssOptions{.window_size = 1});
  EXPECT_THROW(sss.map(p), Error);
}

TEST(Sss, MaxStepOverride) {
  const ObmProblem p = make_problem("C1", 9);
  SortSelectSwapMapper limited(SssOptions{.max_step = 1});
  const Mapping m = limited.map(p);
  EXPECT_TRUE(m.is_valid_permutation(p.num_threads()));
}

// Unequal application sizes (e.g. 8/16/40 threads) must still work: the
// selection step's sections are computed per remaining list.
TEST(Sss, UnequalApplicationSizes) {
  const Mesh mesh = Mesh::square(8);
  Application small;
  small.name = "small";
  small.threads.assign(8, ThreadProfile{4.0, 0.4});
  Application medium;
  medium.name = "medium";
  medium.threads.assign(16, ThreadProfile{2.0, 0.2});
  Application large;
  large.name = "large";
  large.threads.assign(40, ThreadProfile{1.0, 0.1});
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     Workload({small, medium, large}));
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  EXPECT_TRUE(m.is_valid_permutation(64));
}

// Padded workloads (fewer threads than tiles) per paper footnote 1.
TEST(Sss, PaddedWorkload) {
  const Mesh mesh = Mesh::square(8);
  Application a;
  a.name = "a";
  a.threads.assign(20, ThreadProfile{3.0, 0.3});
  Application b;
  b.name = "b";
  b.threads.assign(20, ThreadProfile{1.0, 0.1});
  const Workload wl = Workload({a, b}).padded_to(64);
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}), wl);
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  EXPECT_TRUE(m.is_valid_permutation(64));
  const LatencyReport r = evaluate(p, m);
  EXPECT_GT(r.max_apl, 0.0);
}

// The paper's Figure-8 observation: under SSS, the lightest application no
// longer monopolizes the worst (corner) tiles.
TEST(Sss, LightestAppNotConfinedToCorners) {
  const ObmProblem p = make_problem("C1", 10);
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  const Mesh& mesh = p.mesh();
  const Workload& wl = p.workload();
  // Count corner tiles held by the lightest application (app 0).
  int corners_app0 = 0;
  const std::vector<TileId> corners{mesh.tile_at(0, 0), mesh.tile_at(0, 7),
                                    mesh.tile_at(7, 0), mesh.tile_at(7, 7)};
  for (std::size_t j = wl.first_thread(0); j < wl.last_thread(0); ++j) {
    for (TileId c : corners) {
      if (m.tile_of(j) == c) ++corners_app0;
    }
  }
  EXPECT_LT(corners_app0, 4);  // Global gives all four corners to app 0
}

}  // namespace
}  // namespace nocmap
