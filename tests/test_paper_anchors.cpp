// Exact numeric anchors from the paper's own worked examples. These tests
// pin the latency model and problem formulation to the published arithmetic:
// if any of them fails, the reproduction is modelling a different system
// than the paper.
#include <gtest/gtest.h>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/sss_mapper.h"

namespace nocmap {
namespace {

// Paper Section III.A, Figure 5: 4 applications x 4 threads on a 4x4 mesh,
// thread cache rates 0.1/0.2/0.3/0.4 per application, zero memory traffic,
// td_r = 3, td_w = 1, td_s = 1 (td_q = 0).
LatencyParams fig5_params() {
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

ObmProblem fig5_problem() {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(4);
  for (std::size_t a = 0; a < 4; ++a) {
    apps[a].name = "app" + std::to_string(a + 1);
    apps[a].threads = {{0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}};
  }
  return ObmProblem(TileLatencyModel(mesh, fig5_params()),
                    Workload(std::move(apps)));
}

// Tile classes on the 4x4 mesh under Fig-5 parameters.
constexpr double kCornerTc = 12.0 + 15.0 / 16.0;  // HC=3.0
constexpr double kEdgeTc = 10.0 + 15.0 / 16.0;    // HC=2.5
constexpr double kCenterTc = 8.0 + 15.0 / 16.0;   // HC=2.0

TEST(Fig5, TileClassLatencies) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(0, 0)), kCornerTc);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(0, 2)), kEdgeTc);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(2, 1)), kCenterTc);
}

// Figure 5(a): the optimal mapping gives every application an APL of
// exactly 10.3375 cycles.
TEST(Fig5, OptimalMappingApl) {
  const ObmProblem p = fig5_problem();
  GlobalMapper global;
  const LatencyReport r = evaluate(p, global.map(p));
  for (double apl : r.apl) {
    EXPECT_NEAR(apl, 10.3375, 1e-9);
  }
  EXPECT_NEAR(r.g_apl, 10.3375, 1e-9);
  EXPECT_NEAR(r.max_apl, 10.3375, 1e-9);
  EXPECT_NEAR(r.dev_apl, 0.0, 1e-9);
}

// Figure 5(b): a mapping can be perfectly "balanced" (dev-APL = 0,
// min-to-max = 1) while every application is equally *bad* at 11.5375
// cycles — the pathology that disqualifies those metrics as objectives.
TEST(Fig5, EquallyBadBalancedMapping) {
  const ObmProblem p = fig5_problem();
  const Mesh& mesh = p.mesh();

  // Give each application one corner, two edges, one center — but reversed:
  // the hottest thread (0.4) gets the corner, the lightest the center.
  const std::vector<TileId> corners{mesh.tile_at(0, 0), mesh.tile_at(0, 3),
                                    mesh.tile_at(3, 0), mesh.tile_at(3, 3)};
  const std::vector<TileId> centers{mesh.tile_at(1, 1), mesh.tile_at(1, 2),
                                    mesh.tile_at(2, 1), mesh.tile_at(2, 2)};
  const std::vector<TileId> edges{mesh.tile_at(0, 1), mesh.tile_at(0, 2),
                                  mesh.tile_at(1, 0), mesh.tile_at(1, 3),
                                  mesh.tile_at(2, 0), mesh.tile_at(2, 3),
                                  mesh.tile_at(3, 1), mesh.tile_at(3, 2)};
  Mapping m;
  m.thread_to_tile.resize(16);
  for (std::size_t a = 0; a < 4; ++a) {
    m.thread_to_tile[a * 4 + 0] = centers[a];      // 0.1 -> center (waste)
    m.thread_to_tile[a * 4 + 1] = edges[a * 2];    // 0.2 -> edge
    m.thread_to_tile[a * 4 + 2] = edges[a * 2 + 1];  // 0.3 -> edge
    m.thread_to_tile[a * 4 + 3] = corners[a];      // 0.4 -> corner (waste)
  }
  ASSERT_TRUE(m.is_valid_permutation(16));

  const LatencyReport r = evaluate(p, m);
  for (double apl : r.apl) {
    EXPECT_NEAR(apl, 11.5375, 1e-9);
  }
  EXPECT_NEAR(r.dev_apl, 0.0, 1e-9);
  EXPECT_NEAR(r.min_to_max, 1.0, 1e-9);
  // Perfectly balanced by both rejected metrics, yet 1.2 cycles worse than
  // the optimum for every single application.
  EXPECT_GT(r.g_apl, 10.3375 + 1.0);
}

// SSS must land within the narrow band [optimal, optimal + small] on the
// Fig-5 instance: max-APL is bounded below by the optimal g-APL.
TEST(Fig5, SssNearOptimal) {
  const ObmProblem p = fig5_problem();
  SortSelectSwapMapper sss;
  const LatencyReport r = evaluate(p, sss.map(p));
  EXPECT_GE(r.max_apl, 10.3375 - 1e-9);
  EXPECT_LE(r.max_apl, 10.3375 + 0.45);
  EXPECT_LT(r.dev_apl, 0.2);
}

// Section II.C worked anchors on the 8x8 mesh.
TEST(Section2C, HopCountAnchors) {
  const Mesh mesh = Mesh::square(8);
  EXPECT_DOUBLE_EQ(mesh.avg_hops_to_all(mesh.from_paper_number(1)), 7.0);
  EXPECT_DOUBLE_EQ(mesh.avg_hops_to_all(mesh.from_paper_number(28)), 4.0);
}

// Section III.C reduction sanity: with two equal-size applications of
// uniform unit cache rates and zero memory traffic, APLs reduce to plain
// averages of TC over each half — the set-partition structure used in the
// NP-completeness proof.
TEST(Section3C, ReductionArithmetic) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  std::vector<Application> apps(2);
  for (auto& a : apps) {
    a.threads.assign(8, ThreadProfile{1.0, 0.0});
  }
  const ObmProblem p(model, Workload(std::move(apps)));
  const Mapping m = p.identity_mapping();
  const LatencyReport r = evaluate(p, m);

  double half1 = 0.0, half2 = 0.0;
  for (TileId t = 0; t < 8; ++t) half1 += model.tc(t);
  for (TileId t = 8; t < 16; ++t) half2 += model.tc(t);
  EXPECT_NEAR(r.apl[0], half1 / 8.0, 1e-12);
  EXPECT_NEAR(r.apl[1], half2 / 8.0, 1e-12);

  // gamma = average TC over the whole chip bounds max(d1, d2) from below.
  const double gamma = (half1 + half2) / 16.0;
  EXPECT_GE(r.max_apl, gamma - 1e-12);
}

}  // namespace
}  // namespace nocmap
