#include "netsim/network.h"

#include <gtest/gtest.h>

namespace nocmap {
namespace {

NetworkConfig default_config() { return NetworkConfig{}; }

PacketInfo make_packet(PacketId id, TileId src, TileId dst,
                       std::uint32_t flits, Cycle created = 0) {
  PacketInfo p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.flits = flits;
  p.created = created;
  return p;
}

std::vector<Ejection> run_until_drained(Network& net, Cycle limit = 10000) {
  std::vector<Ejection> all;
  for (Cycle c = 0; c < limit && net.packets_in_flight() > 0; ++c) {
    net.step();
    for (auto& e : net.take_ejections()) all.push_back(e);
  }
  return all;
}

TEST(Network, SingleFlitPacketTraversesOneHop) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, default_config());
  net.inject_packet(make_packet(1, mesh.tile_at(1, 1), mesh.tile_at(1, 2), 1));
  const auto ejections = run_until_drained(net);
  ASSERT_EQ(ejections.size(), 1u);
  EXPECT_EQ(ejections[0].info.id, 1u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  // 1 hop: src router pipeline (3) + link (1) + dst pipeline (3) + eject (1)
  // + injection cycle. The exact constant matters less than determinism,
  // but it must be at least the unloaded minimum.
  EXPECT_GE(ejections[0].latency(), 8u);
  EXPECT_LE(ejections[0].latency(), 12u);
}

TEST(Network, LatencyGrowsLinearlyWithHops) {
  const Mesh mesh = Mesh::square(8);
  std::vector<Cycle> latencies;
  for (std::uint32_t hops = 1; hops <= 7; ++hops) {
    Network net(mesh, default_config());
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(0, hops), 1));
    const auto e = run_until_drained(net);
    ASSERT_EQ(e.size(), 1u);
    latencies.push_back(e[0].latency());
  }
  // Unloaded per-hop increment must be constant (router + link latency).
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    EXPECT_EQ(latencies[i] - latencies[i - 1],
              latencies[1] - latencies[0]);
  }
  const Cycle per_hop = latencies[1] - latencies[0];
  EXPECT_EQ(per_hop, 4u);  // 3-stage router + 1-cycle link
}

TEST(Network, SerializationAddsTailLatency) {
  const Mesh mesh = Mesh::square(4);
  Cycle lat_short = 0, lat_long = 0;
  {
    Network net(mesh, default_config());
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(0, 2), 1));
    lat_short = run_until_drained(net)[0].latency();
  }
  {
    Network net(mesh, default_config());
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(0, 2), 5));
    lat_long = run_until_drained(net)[0].latency();
  }
  EXPECT_EQ(lat_long - lat_short, 4u);  // 4 extra flits behind the head
}

TEST(Network, FlitConservation) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, default_config());
  std::uint64_t injected_flits = 0;
  PacketId id = 1;
  for (TileId src = 0; src < 16; ++src) {
    for (TileId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      const std::uint32_t flits = (src + dst) % 2 ? 1 : 5;
      net.inject_packet(make_packet(id++, src, dst, flits));
      injected_flits += flits;
    }
  }
  const auto ejections = run_until_drained(net, 100000);
  EXPECT_EQ(ejections.size(), id - 1);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.flits_injected(), injected_flits);
  EXPECT_EQ(net.flits_ejected(), injected_flits);
}

TEST(Network, AllPacketsReachCorrectDestination) {
  const Mesh mesh = Mesh::square(5);
  Network net(mesh, default_config());
  // The destination check lives inside the network (process_sink asserts);
  // inject a batch and make sure everything drains.
  PacketId id = 1;
  for (TileId src = 0; src < 25; ++src) {
    net.inject_packet(make_packet(id++, src, (src + 7) % 25, 3));
  }
  const auto ejections = run_until_drained(net, 100000);
  EXPECT_EQ(ejections.size(), 25u);
}

TEST(Network, RejectsBadPackets) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, default_config());
  EXPECT_THROW(net.inject_packet(make_packet(1, 3, 3, 1)), Error);   // local
  EXPECT_THROW(net.inject_packet(make_packet(2, 0, 99, 1)), Error);  // range
  EXPECT_THROW(net.inject_packet(make_packet(3, 0, 1, 0)), Error);   // empty
  net.inject_packet(make_packet(4, 0, 1, 1));
  EXPECT_THROW(net.inject_packet(make_packet(4, 1, 2, 1)), Error);  // dup id
}

TEST(Network, ActivityScalesWithDistance) {
  const Mesh mesh = Mesh::square(8);
  ActivityCounters near, far;
  {
    Network net(mesh, default_config());
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(0, 1), 1));
    run_until_drained(net);
    near = net.total_activity();
  }
  {
    Network net(mesh, default_config());
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(7, 7), 1));
    run_until_drained(net);
    far = net.total_activity();
  }
  EXPECT_EQ(near.link_traversals, 1u);
  EXPECT_EQ(far.link_traversals, 14u);
  EXPECT_GT(far.buffer_writes, near.buffer_writes);
  EXPECT_GT(far.crossbar_traversals, near.crossbar_traversals);
}

TEST(Network, HeavyContentionStillDrains) {
  // Hot-spot: everyone sends a long packet to one center tile.
  const Mesh mesh = Mesh::square(6);
  Network net(mesh, default_config());
  const TileId hot = mesh.tile_at(3, 3);
  PacketId id = 1;
  for (TileId src = 0; src < 36; ++src) {
    if (src == hot) continue;
    net.inject_packet(make_packet(id++, src, hot, 5));
  }
  const auto ejections = run_until_drained(net, 200000);
  EXPECT_EQ(ejections.size(), 35u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(Network, DeterministicReplay) {
  const Mesh mesh = Mesh::square(4);
  auto run_once = [&] {
    Network net(mesh, default_config());
    PacketId id = 1;
    for (TileId src = 0; src < 16; ++src) {
      net.inject_packet(make_packet(id++, src, (src + 5) % 16, 2));
    }
    std::vector<Cycle> lats;
    for (const auto& e : run_until_drained(net)) lats.push_back(e.latency());
    return lats;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Network, ResetActivityClearsCounters) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, default_config());
  net.inject_packet(make_packet(1, 0, 5, 2));
  run_until_drained(net);
  EXPECT_GT(net.total_activity().buffer_writes, 0u);
  net.reset_activity();
  const ActivityCounters a = net.total_activity();
  EXPECT_EQ(a.buffer_writes, 0u);
  EXPECT_EQ(a.link_traversals, 0u);
}

}  // namespace
}  // namespace nocmap
