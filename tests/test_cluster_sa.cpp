#include "core/cluster_sa_mapper.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/random_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem(std::uint64_t seed = 91) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), seed));
}

TEST(ClusterSa, ProducesValidPermutation) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper csa(ClusterSaParams{.coarse_iterations = 500,
                                      .fine_iterations = 2000, .seed = 1});
  EXPECT_TRUE(csa.map(p).is_valid_permutation(p.num_threads()));
}

TEST(ClusterSa, DeterministicForSeed) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper a(ClusterSaParams{.seed = 5});
  ClusterSaMapper b(ClusterSaParams{.seed = 5});
  EXPECT_EQ(a.map(p).thread_to_tile, b.map(p).thread_to_tile);
}

TEST(ClusterSa, BeatsRandomAverage) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper csa(ClusterSaParams{.seed = 2});
  const double obj = evaluate(p, csa.map(p)).max_apl;
  RandomMapper random(7);
  double avg = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    avg += evaluate(p, random.map(p)).max_apl;
  }
  EXPECT_LT(obj, avg / trials);
}

TEST(ClusterSa, CoarseOnlyStillValid) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper csa(ClusterSaParams{.coarse_iterations = 1000,
                                      .fine_iterations = 0, .seed = 3});
  EXPECT_TRUE(csa.map(p).is_valid_permutation(p.num_threads()));
}

TEST(ClusterSa, FineOnlyStillValid) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper csa(ClusterSaParams{.coarse_iterations = 0,
                                      .fine_iterations = 2000, .seed = 3});
  EXPECT_TRUE(csa.map(p).is_valid_permutation(p.num_threads()));
}

TEST(ClusterSa, OddClusterSizeOnRaggedMesh) {
  // 6x6 mesh with 4-wide clusters: ragged edges must still be handled.
  const Mesh mesh = Mesh::square(6);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = 9;
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     synthesize_workload(parsec_config("C2"), 5, opt));
  ClusterSaMapper csa(ClusterSaParams{.cluster_side = 4,
                                      .coarse_iterations = 500,
                                      .fine_iterations = 1000, .seed = 4});
  EXPECT_TRUE(csa.map(p).is_valid_permutation(36));
}

TEST(ClusterSa, FinePhaseImprovesOnCoarse) {
  const ObmProblem p = c1_problem();
  double coarse_total = 0.0, full_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    ClusterSaMapper coarse(ClusterSaParams{
        .coarse_iterations = 2000, .fine_iterations = 0, .seed = seed});
    ClusterSaMapper full(ClusterSaParams{
        .coarse_iterations = 2000, .fine_iterations = 20000, .seed = seed});
    coarse_total += evaluate(p, coarse.map(p)).max_apl;
    full_total += evaluate(p, full.map(p)).max_apl;
  }
  EXPECT_LT(full_total, coarse_total);
}

TEST(ClusterSa, Name) { EXPECT_EQ(ClusterSaMapper().name(), "CSA"); }

TEST(ClusterSa, InvalidParamsRejected) {
  const ObmProblem p = c1_problem();
  ClusterSaMapper bad(ClusterSaParams{.cluster_side = 0});
  EXPECT_THROW(bad.map(p), Error);
}

}  // namespace
}  // namespace nocmap
