#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/table.h"

namespace nocmap {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, ArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvExportMatchesContents) {
  TextTable t({"a", "b"});
  t.add_row({"1", "x,y"});
  const std::string path = ::testing::TempDir() + "/nocmap_table.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(-1.0, 1), "-1.0");
}

TEST(FmtPercent, SignedPercent) {
  EXPECT_EQ(fmt_percent(0.0382), "+3.82%");
  EXPECT_EQ(fmt_percent(-0.105, 1), "-10.5%");
}

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/nocmap_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"a", "b,c"});
    w.write_row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\"");
  EXPECT_EQ(line2, "1,2");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), Error);
}

}  // namespace
}  // namespace nocmap
