// Edge shapes for the spatially partitioned netsim (DESIGN.md §16): the
// row-band decomposition must be bit-identical to the serial engine not
// just at the friendly power-of-two counts the golden gate covers, but at
// odd worker counts (bands of unequal height), worker counts exceeding the
// row count (domains clamp to rows), non-square and degenerate 2-wide
// meshes (every router is a boundary router), and under different drain
// caps (the measurement window must not see the partition *or* the drain).
#include "netsim/network.h"
#include "netsim/sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/annealing_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

/// rows × cols mesh with corner MCs (degenerate corners coincide on 1-row /
/// 1-col shapes are not used here) and a 4-app workload filling the tiles.
ObmProblem rect_problem(std::uint32_t rows, std::uint32_t cols,
                        std::uint64_t seed) {
  const std::uint32_t last_col = cols - 1;
  const std::uint32_t last_row = rows - 1;
  const Mesh mesh(rows, cols,
                  {0, last_col, last_row * cols, last_row * cols + last_col});
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C2"), 77 + seed, opt));
}

SimConfig quick_config(std::size_t sim_workers) {
  SimConfig c;
  c.warmup_cycles = 300;
  c.measure_cycles = 2500;
  c.traffic.injection_scale = 2.0;
  c.sim_workers = sim_workers;
  return c;
}

void expect_identical(const SimResult& s, const SimResult& q) {
  ASSERT_EQ(q.apl.size(), s.apl.size());
  for (std::size_t a = 0; a < s.apl.size(); ++a) {
    EXPECT_EQ(q.apl[a], s.apl[a]) << "app " << a;
  }
  EXPECT_EQ(q.max_apl, s.max_apl);
  EXPECT_EQ(q.dev_apl, s.dev_apl);
  EXPECT_EQ(q.g_apl, s.g_apl);
  EXPECT_EQ(q.packets_measured, s.packets_measured);
  EXPECT_EQ(q.local_accesses, s.local_accesses);
  EXPECT_EQ(q.flits_injected, s.flits_injected);
  EXPECT_EQ(q.flits_ejected, s.flits_ejected);
  EXPECT_EQ(q.activity.crossbar_traversals, s.activity.crossbar_traversals);
  EXPECT_EQ(q.activity.link_traversals, s.activity.link_traversals);
  EXPECT_EQ(q.activity.queue_wait_cycles, s.activity.queue_wait_cycles);
  EXPECT_EQ(q.load.max_crossbar_per_cycle, s.load.max_crossbar_per_cycle);
  EXPECT_EQ(q.load.link_utilization, s.load.link_utilization);
  EXPECT_EQ(q.load.hottest_router, s.load.hottest_router);
}

// --- Partition geometry ----------------------------------------------------

TEST(NetsimPartition, DomainsAreContiguousRowBandsCoveringTheMesh) {
  const Mesh mesh = Mesh::square(8);
  const NetworkConfig config;
  for (const std::size_t workers : {1, 2, 3, 5, 7, 8}) {
    Network net(mesh, config, workers);
    ASSERT_EQ(net.num_domains(), workers);  // workers <= rows here
    TileId expect_first = 0;
    for (std::size_t d = 0; d < net.num_domains(); ++d) {
      EXPECT_EQ(net.domain_first_tile(d), expect_first);
      const TileId end = net.domain_end_tile(d);
      // Whole rows only: band edges land on row boundaries.
      EXPECT_EQ((end - net.domain_first_tile(d)) % mesh.cols(), 0u);
      EXPECT_GT(end, net.domain_first_tile(d));
      expect_first = end;
    }
    EXPECT_EQ(expect_first, mesh.num_tiles());
  }
}

TEST(NetsimPartition, WorkerCountClampsToRows) {
  const Mesh mesh = Mesh::square(4);
  const NetworkConfig config;
  for (const std::size_t workers : {4, 5, 8, 64}) {
    Network net(mesh, config, workers);
    EXPECT_EQ(net.num_domains(), 4u) << workers << " workers";
    for (std::size_t d = 0; d < net.num_domains(); ++d) {
      // One row per domain once clamped.
      EXPECT_EQ(net.domain_end_tile(d) - net.domain_first_tile(d),
                mesh.cols());
    }
  }
}

TEST(NetsimPartition, TwoWideMeshesPartitionDownToSingleRows) {
  // 8×2: eight rows of two tiles — every router borders another domain.
  const Mesh tall(8, 2, {0, 1, 14, 15});
  Network net(tall, NetworkConfig{}, 8);
  EXPECT_EQ(net.num_domains(), 8u);
  // 2×8: only two rows, so any worker count yields at most two domains.
  const Mesh wide(2, 8, {0, 7, 8, 15});
  Network net2(wide, NetworkConfig{}, 8);
  EXPECT_EQ(net2.num_domains(), 2u);
}

// --- Bit-identity on awkward shapes ---------------------------------------

TEST(NetsimPartition, OddWorkerCountsMatchSerialOn8x8) {
  const ObmProblem p = rect_problem(8, 8, 1);
  const Mapping id = p.identity_mapping();
  const SimResult serial = run_simulation(p, id, quick_config(1));
  for (const std::size_t workers : {3, 5, 7}) {
    SCOPED_TRACE(std::to_string(workers) + " workers (uneven bands)");
    expect_identical(serial, run_simulation(p, id, quick_config(workers)));
  }
}

TEST(NetsimPartition, WorkersExceedingRowsMatchSerial) {
  const ObmProblem p = rect_problem(4, 4, 2);
  const Mapping id = p.identity_mapping();
  const SimResult serial = run_simulation(p, id, quick_config(1));
  for (const std::size_t workers : {6, 16, 64}) {
    SCOPED_TRACE(std::to_string(workers) + " workers on 4 rows");
    expect_identical(serial, run_simulation(p, id, quick_config(workers)));
  }
}

TEST(NetsimPartition, NonSquareMeshMatchesSerial) {
  const ObmProblem p = rect_problem(6, 10, 3);
  const Mapping id = p.identity_mapping();
  const SimResult serial = run_simulation(p, id, quick_config(1));
  for (const std::size_t workers : {2, 3, 4, 6}) {
    SCOPED_TRACE(std::to_string(workers) + " workers on 6x10");
    expect_identical(serial, run_simulation(p, id, quick_config(workers)));
  }
}

TEST(NetsimPartition, TwoWideMeshesMatchSerial) {
  // All traffic crosses domain boundaries on these shapes, so staging and
  // commit carry the entire flit stream.
  for (const auto& [rows, cols] : {std::pair<std::uint32_t, std::uint32_t>{
                                       8, 2},
                                   {2, 8}}) {
    const ObmProblem p = rect_problem(rows, cols, 4);
    const Mapping id = p.identity_mapping();
    const SimResult serial = run_simulation(p, id, quick_config(1));
    for (const std::size_t workers : {2, 8}) {
      SCOPED_TRACE(std::to_string(rows) + "x" + std::to_string(cols) +
                   " at " + std::to_string(workers) + " workers");
      expect_identical(serial, run_simulation(p, id, quick_config(workers)));
    }
  }
}

TEST(NetsimPartition, YxAndO1TurnRoutingMatchSerialWhenPartitioned) {
  // Y-first sub-routes cross row bands immediately at the source router —
  // the worst case for the halo-exchange path.
  const ObmProblem p = rect_problem(8, 8, 5);
  const Mapping id = p.identity_mapping();
  for (const RoutingAlgo algo : {RoutingAlgo::kYX, RoutingAlgo::kO1Turn}) {
    SimConfig base = quick_config(1);
    base.network.routing = algo;
    if (algo == RoutingAlgo::kO1Turn) base.network.vcs_per_port = 4;
    const SimResult serial = run_simulation(p, id, base);
    for (const std::size_t workers : {2, 5, 8}) {
      SCOPED_TRACE(std::to_string(static_cast<int>(algo)) + " at " +
                   std::to_string(workers) + " workers");
      SimConfig c = base;
      c.sim_workers = workers;
      expect_identical(serial, run_simulation(p, id, c));
    }
  }
}

// --- Drain-window invariance ----------------------------------------------

TEST(NetsimPartition, MeasurementWindowInvariantUnderDrainCapAndWorkers) {
  // The snapshot-frozen results (measurement-window activity, load digest)
  // must not depend on how long the drain runs — at any partition width.
  // Full results (APLs included) are invariant across *completing* drain
  // caps; a binding cap censors tail packets identically at every width.
  const ObmProblem p = rect_problem(8, 8, 6);
  const Mapping id = p.identity_mapping();

  SimConfig generous = quick_config(1);
  generous.max_drain_cycles = 200000;
  const SimResult reference = run_simulation(p, id, generous);
  ASSERT_FALSE(reference.drain_incomplete);

  SimConfig capped_serial = quick_config(1);
  capped_serial.max_drain_cycles = 40;
  const SimResult censored = run_simulation(p, id, capped_serial);
  ASSERT_TRUE(censored.drain_incomplete);

  for (const std::size_t workers : {1, 2, 8}) {
    for (const Cycle cap : {Cycle{40}, Cycle{5000}, Cycle{200000}}) {
      SCOPED_TRACE(std::to_string(workers) + " workers, drain cap " +
                   std::to_string(cap));
      SimConfig c = quick_config(workers);
      c.max_drain_cycles = cap;
      const SimResult r = run_simulation(p, id, c);
      // Frozen at the window's end, before any drain cycle runs: identical
      // whatever the cap and whatever the partition width.
      EXPECT_EQ(r.activity.crossbar_traversals,
                reference.activity.crossbar_traversals);
      EXPECT_EQ(r.activity.link_traversals,
                reference.activity.link_traversals);
      EXPECT_EQ(r.activity.queue_wait_cycles,
                reference.activity.queue_wait_cycles);
      EXPECT_EQ(r.load.max_crossbar_per_cycle,
                reference.load.max_crossbar_per_cycle);
      EXPECT_EQ(r.load.link_utilization, reference.load.link_utilization);
      EXPECT_EQ(r.load.hottest_router, reference.load.hottest_router);
      // Latency samples: bit-identical to the serial run under the same
      // cap — complete when the drain finishes, censored the same way at
      // every partition width when it does not.
      const SimResult& expected = (cap == 40) ? censored : reference;
      EXPECT_EQ(r.drain_incomplete, expected.drain_incomplete);
      ASSERT_EQ(r.apl.size(), expected.apl.size());
      for (std::size_t a = 0; a < expected.apl.size(); ++a) {
        EXPECT_EQ(r.apl[a], expected.apl[a]) << "app " << a;
      }
      EXPECT_EQ(r.g_apl, expected.g_apl);
      EXPECT_EQ(r.packets_measured, expected.packets_measured);
      if (cap >= 5000) {
        // A completing drain conserves flits regardless of partitioning.
        EXPECT_FALSE(r.drain_incomplete);
        EXPECT_EQ(r.flits_injected, r.flits_ejected);
      }
    }
  }
}

// --- Boundary accounting ---------------------------------------------------

TEST(NetsimPartition, BoundaryFlitCountTracksPartitionWidth) {
  const ObmProblem p = rect_problem(8, 8, 7);
  const Mapping id = p.identity_mapping();
  // Serial: no boundaries, no halo traffic.
  Network serial(p.mesh(), NetworkConfig{}, 1);
  EXPECT_EQ(serial.boundary_flits(), 0u);

  // Partitioned run: vertical traffic must cross bands, so the halo volume
  // is positive and grows (weakly) with the number of band edges.
  SimConfig c2 = quick_config(2);
  SimConfig c8 = quick_config(8);
  const ObmProblem& pp = p;

  auto boundary_volume = [&](const SimConfig& cfg) {
    Network net(pp.mesh(), cfg.network, cfg.sim_workers);
    TrafficEngine traffic(pp, id, cfg.traffic);
    std::vector<LocalAccess> locals;
    for (Cycle t = 0; t < 2000; ++t) {
      locals.clear();
      traffic.generate(net, t, locals);
      net.step();
      for (const Ejection& e : net.take_ejections()) {
        traffic.on_ejection(net, e, net.now());
      }
    }
    return net.boundary_flits();
  };

  const std::uint64_t halo2 = boundary_volume(c2);
  const std::uint64_t halo8 = boundary_volume(c8);
  EXPECT_GT(halo2, 0u);
  EXPECT_GT(halo8, halo2);  // 7 band edges see more crossings than 1
}

// --- Stacked (3D) meshes ---------------------------------------------------

/// layers × n × n stack with corner MCs on the base die and a 4-app
/// workload filling the tiles.
ObmProblem stacked_problem(std::uint32_t layers, std::uint32_t n,
                           std::uint64_t seed) {
  const Mesh mesh = Mesh::stacked_with_placement(layers, n,
                                                 McPlacement::kCorners);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C2"), 77 + seed, opt));
}

TEST(NetsimPartition3D, DomainsAreLayerRowSlabs) {
  // A stack partitions over layer-major global rows: 2 layers of 4 rows
  // give 8 splittable slabs, each a whole number of rows wide.
  const Mesh mesh(2, 4, 4, {0, 3, 12, 15});
  for (const std::size_t workers : {1, 2, 3, 8, 64}) {
    Network net(mesh, NetworkConfig{}, workers);
    EXPECT_EQ(net.num_domains(), std::min<std::size_t>(workers, 8u))
        << workers << " workers";
    TileId expect_first = 0;
    for (std::size_t d = 0; d < net.num_domains(); ++d) {
      EXPECT_EQ(net.domain_first_tile(d), expect_first);
      const TileId end = net.domain_end_tile(d);
      EXPECT_EQ((end - net.domain_first_tile(d)) % mesh.cols(), 0u);
      expect_first = end;
    }
    EXPECT_EQ(expect_first, mesh.num_tiles());
  }
}

TEST(NetsimPartition3D, StackedMeshMatchesSerial) {
  // Vertical (TSV) traffic crosses the layer boundary between slabs — the
  // 3D analogue of the halo-exchange worst case.
  const ObmProblem p = stacked_problem(2, 4, 8);
  const Mapping id = p.identity_mapping();
  const SimResult serial = run_simulation(p, id, quick_config(1));
  EXPECT_EQ(serial.flits_injected, serial.flits_ejected);
  for (const std::size_t workers : {2, 3, 8}) {
    SCOPED_TRACE(std::to_string(workers) + " workers on 2x4x4");
    expect_identical(serial, run_simulation(p, id, quick_config(workers)));
  }
}

// Acceptance scenario: a 4x8x8 (256-tile) multi-application stack runs end
// to end — analytic model, all four paper mappers, and the partitioned
// simulator bit-identical at 1/2/8 workers.
TEST(NetsimPartition3D, FourLayer8x8EndToEndAllMappers) {
  const ObmProblem p = stacked_problem(4, 8, 9);
  ASSERT_EQ(p.mesh().num_tiles(), 256u);

  GlobalMapper global;
  MonteCarloMapper mc(200, 7);
  AnnealingMapper sa(AnnealingParams{.iterations = 2000, .seed = 7});
  SortSelectSwapMapper sss;
  const std::vector<Mapper*> mappers{&global, &mc, &sa, &sss};

  Mapping best;
  double best_max_apl = 0.0;
  for (Mapper* mapper : mappers) {
    const Mapping m = mapper->map(p);
    ASSERT_TRUE(m.is_valid_permutation(p.mesh().num_tiles()));
    const LatencyReport r = evaluate(p, m);
    EXPECT_GT(r.max_apl, 0.0);
    EXPECT_GE(r.max_apl, r.g_apl);
    if (best.thread_to_tile.empty() || r.max_apl < best_max_apl) {
      best = m;
      best_max_apl = r.max_apl;
    }
  }

  SimConfig c = quick_config(1);
  c.warmup_cycles = 200;
  c.measure_cycles = 1200;
  const SimResult serial = run_simulation(p, best, c);
  EXPECT_GT(serial.packets_measured, 0u);
  EXPECT_EQ(serial.flits_injected, serial.flits_ejected);
  for (const std::size_t workers : {2, 8}) {
    SCOPED_TRACE(std::to_string(workers) + " workers on 4x8x8");
    SimConfig cw = c;
    cw.sim_workers = workers;
    expect_identical(serial, run_simulation(p, best, cw));
  }
}

}  // namespace
}  // namespace nocmap
