// Distance-weighted (PDBA-lite) arbitration tests — the architectural
// balance mechanism of paper reference [16], implemented so it can be
// compared against mapping-stage balancing.
#include <gtest/gtest.h>

#include "netsim/sim.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

NetworkConfig dw_config() {
  NetworkConfig c;
  c.arbitration = Arbitration::kDistanceWeighted;
  return c;
}

PacketInfo make_packet(PacketId id, TileId src, TileId dst,
                       std::uint32_t flits = 1) {
  PacketInfo p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.flits = flits;
  return p;
}

std::vector<Ejection> run_until_drained(Network& net, Cycle limit = 200000) {
  std::vector<Ejection> all;
  for (Cycle c = 0; c < limit && net.packets_in_flight() > 0; ++c) {
    net.step();
    for (auto& e : net.take_ejections()) all.push_back(e);
  }
  return all;
}

TEST(DistanceArbitration, DeliversAndConserves) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, dw_config());
  PacketId id = 1;
  for (TileId src = 0; src < 16; ++src) {
    for (TileId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      net.inject_packet(make_packet(id++, src, dst, (src + dst) % 2 ? 1 : 5));
    }
  }
  const auto ejections = run_until_drained(net);
  EXPECT_EQ(ejections.size(), id - 1);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(DistanceArbitration, HotspotDrains) {
  const Mesh mesh = Mesh::square(5);
  Network net(mesh, dw_config());
  const TileId hot = mesh.tile_at(2, 2);
  PacketId id = 1;
  for (TileId src = 0; src < 25; ++src) {
    if (src == hot) continue;
    net.inject_packet(make_packet(id++, src, hot, 5));
  }
  EXPECT_EQ(run_until_drained(net).size(), 24u);
}

TEST(DistanceArbitration, DeterministicForSeed) {
  auto run_once = [&] {
    const Mesh mesh = Mesh::square(4);
    NetworkConfig cfg = dw_config();
    cfg.arbitration_seed = 9;
    Network net(mesh, cfg);
    for (PacketId id = 1; id <= 40; ++id) {
      net.inject_packet(make_packet(
          id, static_cast<TileId>(id % 16),
          static_cast<TileId>((id * 5 + 2) % 16), 2));
    }
    std::vector<Cycle> lats;
    for (const auto& e : run_until_drained(net)) lats.push_back(e.latency());
    return lats;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DistanceArbitration, UnloadedLatencyUnchanged) {
  // Arbitration only matters under contention; a lone packet sees the same
  // latency under both policies.
  const Mesh mesh = Mesh::square(6);
  for (auto arb : {Arbitration::kRoundRobin,
                   Arbitration::kDistanceWeighted}) {
    NetworkConfig cfg;
    cfg.arbitration = arb;
    Network net(mesh, cfg);
    net.inject_packet(make_packet(1, mesh.tile_at(0, 0),
                                  mesh.tile_at(2, 3)));
    const auto e = run_until_drained(net);
    ASSERT_EQ(e.size(), 1u);
    EXPECT_EQ(e[0].latency(), 24u);  // 5 hops x 4 + 3 pipeline + 1 eject
  }
}

TEST(DistanceArbitration, FullSimulationWorks) {
  const Mesh mesh = Mesh::square(8);
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     synthesize_workload(parsec_config("C1"), 81));
  SimConfig cfg;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 15000;
  cfg.network.arbitration = Arbitration::kDistanceWeighted;
  const SimResult r = run_simulation(p, p.identity_mapping(), cfg);
  EXPECT_FALSE(r.drain_incomplete);
  EXPECT_GT(r.packets_measured, 1000u);
}

// Under heavy contention the distance-weighted arbiter must favour
// long-haul packets: the latency gap between far and near senders to a
// common hotspot shrinks relative to round-robin.
TEST(DistanceArbitration, EqualizesNearVsFarUnderContention) {
  const Mesh mesh = Mesh::square(8);
  auto far_minus_near = [&](Arbitration arb) {
    NetworkConfig cfg;
    cfg.arbitration = arb;
    Network net(mesh, cfg);
    const TileId hot = mesh.tile_at(0, 0);
    // Everyone floods the corner; compare the farthest and nearest rows.
    PacketId id = 1;
    for (int round = 0; round < 6; ++round) {
      for (TileId src = 1; src < 64; ++src) {
        net.inject_packet(make_packet(id++, src, hot, 2));
      }
    }
    double near_sum = 0.0, far_sum = 0.0;
    std::size_t near_n = 0, far_n = 0;
    for (const auto& e : run_until_drained(net, 500000)) {
      const auto d = mesh.hops(e.info.src, hot);
      if (d <= 2) {
        near_sum += static_cast<double>(e.latency());
        ++near_n;
      } else if (d >= 10) {
        far_sum += static_cast<double>(e.latency());
        ++far_n;
      }
    }
    return far_sum / static_cast<double>(far_n) -
           near_sum / static_cast<double>(near_n);
  };
  const double rr_gap = far_minus_near(Arbitration::kRoundRobin);
  const double dw_gap = far_minus_near(Arbitration::kDistanceWeighted);
  EXPECT_LT(dw_gap, rr_gap);
}

}  // namespace
}  // namespace nocmap
