#include "core/sam.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace nocmap {
namespace {

LatencyParams fig5_params() {
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

double apl_of(std::span<const ThreadProfile> threads,
              std::span<const TileId> tiles, const TileLatencyModel& model) {
  double weighted = 0.0, volume = 0.0;
  for (std::size_t j = 0; j < threads.size(); ++j) {
    weighted += threads[j].cache_rate * model.tc(tiles[j]) +
                threads[j].memory_rate * model.tm(tiles[j]);
    volume += threads[j].total_rate();
  }
  return weighted / volume;
}

TEST(Sam, SizeMismatchRejected) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  const std::vector<ThreadProfile> threads{{1.0, 0.0}};
  const std::vector<TileId> tiles{0, 1};
  EXPECT_THROW(solve_sam(threads, tiles, model), Error);
}

TEST(Sam, SingleThreadTrivial) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  const std::vector<ThreadProfile> threads{{2.0, 1.0}};
  const std::vector<TileId> tiles{5};
  const SamResult r = solve_sam(threads, tiles, model);
  EXPECT_EQ(r.tiles, tiles);
  const double expected =
      (2.0 * model.tc(5) + 1.0 * model.tm(5)) / 3.0;
  EXPECT_NEAR(r.apl, expected, 1e-12);
}

// The paper's Figure-5 intuition: within an application, the hottest thread
// gets the lowest-TC tile.
TEST(Sam, HotThreadGetsBestTile) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  const std::vector<ThreadProfile> threads{
      {0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}};
  // One corner (TC high), two edges, one center (TC low).
  const std::vector<TileId> tiles{mesh.tile_at(0, 0), mesh.tile_at(0, 1),
                                  mesh.tile_at(1, 0), mesh.tile_at(1, 1)};
  const SamResult r = solve_sam(threads, tiles, model);
  EXPECT_EQ(r.tiles[3], mesh.tile_at(1, 1));  // 0.4 -> center
  EXPECT_EQ(r.tiles[0], mesh.tile_at(0, 0));  // 0.1 -> corner
  // Paper Fig. 5(a): per-application optimal APL is 10.3375 cycles.
  EXPECT_NEAR(r.apl, 10.3375, 1e-9);
}

TEST(Sam, ResultIsPermutationOfInputTiles) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  Rng rng(3);
  std::vector<ThreadProfile> threads(16);
  for (auto& t : threads) {
    t = {rng.uniform(0.0, 10.0), rng.uniform(0.0, 2.0)};
  }
  std::vector<TileId> tiles;
  for (std::size_t v : random_permutation(64, rng)) {
    tiles.push_back(static_cast<TileId>(v));
    if (tiles.size() == 16) break;
  }
  const SamResult r = solve_sam(threads, tiles, model);
  auto sorted_in = tiles;
  auto sorted_out = r.tiles;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

// Property: SAM is optimal — no random permutation of the tiles beats it.
class SamOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SamOptimalityProperty, BeatsRandomPermutations) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  std::vector<ThreadProfile> threads(12);
  for (auto& t : threads) {
    t = {rng.uniform(0.0, 20.0), rng.uniform(0.0, 4.0)};
  }
  std::vector<TileId> tiles;
  for (std::size_t v : random_permutation(64, rng)) {
    tiles.push_back(static_cast<TileId>(v));
    if (tiles.size() == 12) break;
  }
  const SamResult r = solve_sam(threads, tiles, model);
  EXPECT_NEAR(r.apl, apl_of(threads, r.tiles, model), 1e-9);
  for (int trial = 0; trial < 100; ++trial) {
    auto shuffled = tiles;
    rng.shuffle(shuffled);
    EXPECT_LE(r.apl, apl_of(threads, shuffled, model) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamOptimalityProperty,
                         ::testing::Range(0, 15));

TEST(Sam, MemoryTrafficInfluencesAssignment) {
  // A memory-heavy thread should prefer a corner (MC) tile even though its
  // cache latency is the worst there.
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  const std::vector<ThreadProfile> threads{
      {0.1, 10.0},  // memory-dominated
      {10.0, 0.1},  // cache-dominated
  };
  const std::vector<TileId> tiles{mesh.tile_at(0, 0),   // corner, has MC
                                  mesh.tile_at(3, 3)};  // center
  const SamResult r = solve_sam(threads, tiles, model);
  EXPECT_EQ(r.tiles[0], mesh.tile_at(0, 0));
  EXPECT_EQ(r.tiles[1], mesh.tile_at(3, 3));
}

}  // namespace
}  // namespace nocmap
