// Observability-layer tests: JSON writer correctness (escaping, ordering,
// number formatting), chrome://tracing export determinism, counter/timer/
// gauge aggregation invariance under the thread pool at 1/2/8 workers, and
// the RunReport document shape.
//
// The aggregation tests are the contract the bench layer relies on: merged
// totals must not depend on how many workers carried the increments.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nocmap::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonValue::escape("plain"), "plain");
  EXPECT_EQ(JsonValue::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonValue::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonValue::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonValue::escape("\b\f"), "\\b\\f");
  EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonValue::escape(std::string(1, '\x1f')), "\\u001f");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(JsonValue::escape("na\xc3\xafve"), "na\xc3\xafve");
}

TEST(Json, DumpRoundTripsEscapedStrings) {
  JsonValue doc = JsonValue::object();
  doc["k\"ey"] = JsonValue("va\nlue");
  EXPECT_EQ(doc.dump(0), "{\"k\\\"ey\":\"va\\nlue\"}");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc["zebra"] = JsonValue(1);
  doc["apple"] = JsonValue(2);
  doc["mango"] = JsonValue(3);
  const std::string s = doc.dump(0);
  EXPECT_LT(s.find("zebra"), s.find("apple"));
  EXPECT_LT(s.find("apple"), s.find("mango"));
}

TEST(Json, IntegersPrintExactlyAndDoublesDistinctly) {
  JsonValue doc = JsonValue::object();
  doc["count"] = JsonValue(std::uint64_t{42});
  doc["negative"] = JsonValue(std::int64_t{-7});
  doc["ratio"] = JsonValue(0.5);
  const std::string s = doc.dump(0);
  EXPECT_NE(s.find("\"count\":42"), std::string::npos) << s;
  EXPECT_NE(s.find("\"negative\":-7"), std::string::npos) << s;
  EXPECT_NE(s.find("\"ratio\":0.5"), std::string::npos) << s;
  EXPECT_EQ(s.find("42.0"), std::string::npos) << s;
}

TEST(Json, DottedPathCreatesNestedObjects) {
  JsonValue doc = JsonValue::object();
  doc.at_path("a.b.c") = JsonValue(1);
  doc.at_path("a.b.d") = JsonValue(2);
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* b = a->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->find("c"), nullptr);
  ASSERT_NE(b->find("d"), nullptr);
  EXPECT_EQ(b->size(), 2u);
}

TEST(Json, ArraysAppendInOrder) {
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(1));
  arr.push_back(JsonValue(2));
  EXPECT_EQ(arr.dump(0), "[1,2]");
}

// ------------------------------------------------------------- JSON parser

TEST(JsonParse, ReadsEveryValueKind) {
  const JsonValue doc = JsonValue::parse(
      R"({"n":null,"t":true,"f":false,"i":-3,"u":18446744073709551615,)"
      R"("d":1.5,"s":"hi","a":[1,2],"o":{"k":"v"}})");
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_FALSE(doc.find("f")->as_bool());
  EXPECT_EQ(doc.find("i")->as_int(), -3);
  EXPECT_EQ(doc.find("u")->as_uint(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(doc.find("d")->as_double(), 1.5);
  EXPECT_EQ(doc.find("s")->as_string(), "hi");
  EXPECT_EQ(doc.find("a")->size(), 2u);
  EXPECT_EQ(doc.find("o")->find("k")->as_string(), "v");
}

TEST(JsonParse, RoundTripsThroughDump) {
  JsonValue doc = JsonValue::object();
  doc["name"] = "sweep \"x\"\n";
  doc["count"] = std::uint64_t{42};
  doc["scale"] = 0.1;
  doc["flags"] = JsonValue::array();
  doc["flags"].push_back(true);
  doc["flags"].push_back(JsonValue());
  for (const int indent : {0, 2}) {
    const JsonValue reparsed = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(reparsed.dump(0), doc.dump(0)) << "indent " << indent;
  }
}

TEST(JsonParse, DecodesUnicodeEscapesIncludingSurrogatePairs) {
  const JsonValue doc = JsonValue::parse(R"(["Aé", "😀"])");
  EXPECT_EQ(doc.items()[0].as_string(), "A\xc3\xa9");
  EXPECT_EQ(doc.items()[1].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocumentsWithByteOffsets) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":1,}", "{\"a\" 1}", "01", "truth",
        "\"unterminated", "[1] trailing", "{\"a\":1,\"a\":2}"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), Error) << bad;
  }
  try {
    (void)JsonValue::parse("{\"a\": nope}");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, RejectsRunawayNesting) {
  const std::string deep(100, '[');
  EXPECT_THROW((void)JsonValue::parse(deep), Error);
}

TEST(JsonParse, TypedAccessorsEnforceTypes) {
  const JsonValue doc = JsonValue::parse(R"({"s":"x","neg":-1})");
  EXPECT_THROW((void)doc.find("s")->as_uint(), Error);
  EXPECT_THROW((void)doc.find("neg")->as_uint(), Error);
  EXPECT_THROW((void)doc.find("s")->as_bool(), Error);
  EXPECT_EQ(doc.find("neg")->as_int(), -1);
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_double(), -1.0);
}

// ---------------------------------------------------------------- Trace

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_trace();
    enable_tracing();
  }
  void TearDown() override {
    disable_tracing();
    clear_trace();
  }
};

std::string dump_trace() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

TEST_F(TraceTest, EventsSerializeSortedByStartTime) {
  // Emit deliberately out of order; the exporter must sort by start time.
  trace_emit("late", 3'000'000'000ull, 1000);
  trace_emit("early", 1'000'000'000ull, 1000);
  trace_emit("middle", 2'000'000'000ull, 1000);
  const std::string s = dump_trace();
  EXPECT_LT(s.find("early"), s.find("middle"));
  EXPECT_LT(s.find("middle"), s.find("late"));
}

TEST_F(TraceTest, SerializationIsDeterministic) {
  trace_emit("b", 500, 10);
  trace_emit("a", 500, 10);
  const std::string first = dump_trace();
  EXPECT_EQ(first, dump_trace());
  // Equal start time: ties broken by (tid, name) — same thread, so by name.
  EXPECT_LT(first.find("\"a\""), first.find("\"b\""));
}

TEST_F(TraceTest, EventNamesAreEscaped) {
  trace_emit("odd\"name\n", 1'000'000'000ull, 42);
  const std::string s = dump_trace();
  EXPECT_NE(s.find("odd\\\"name\\n"), std::string::npos) << s;
  EXPECT_EQ(s.find("odd\"name\n"), std::string::npos);
}

TEST_F(TraceTest, DocumentParsesAsTraceEventFormat) {
  trace_emit("span", 2'000'000'000ull, 5000);
  const std::string s = dump_trace();
  // Structural markers of the Trace Event Format.
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\": \"nocmap\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\": 1"), std::string::npos);
}

TEST_F(TraceTest, DisabledTracingDropsEvents) {
  disable_tracing();
  const std::size_t before = trace_event_count();
  trace_emit("ignored", 123, 456);
  EXPECT_EQ(trace_event_count(), before);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  trace_emit("main-span", 1'000'000'000ull, 10);
  std::thread other([] { trace_emit("worker-span", 1'000'000'000ull, 10); });
  other.join();
  EXPECT_EQ(trace_event_count(), 2u);
  const std::string s = dump_trace();
  EXPECT_NE(s.find("main-span"), std::string::npos);
  EXPECT_NE(s.find("worker-span"), std::string::npos);
}

// ---------------------------------------------------------------- Metrics

const MetricRow* find_row(const std::vector<MetricRow>& rows,
                          const std::string& name) {
  const auto it = std::find_if(rows.begin(), rows.end(),
                               [&](const MetricRow& r) {
                                 return r.name == name;
                               });
  return it == rows.end() ? nullptr : &*it;
}

/// Counter totals must be invariant in the worker count: N increments of
/// known weights always merge to the same sum.
class MetricAggregation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricAggregation, CounterTotalsAreWorkerCountInvariant) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  reset();
  static const Counter counter("test.obs.pool_counter");
  constexpr std::size_t kItems = 1000;

  ThreadPool pool(GetParam());
  pool.parallel_for(0, kItems,
                    [&](std::size_t i) { counter.add(i); });

  const MetricRow* row = find_row(snapshot(), "test.obs.pool_counter");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, MetricKind::kCounter);
  // sum 0..999 = 999*1000/2, independent of how workers split the range.
  EXPECT_EQ(row->count, 499500u);
}

TEST_P(MetricAggregation, TimerSpanCountsAreWorkerCountInvariant) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  reset();
  static const Timer timer("test.obs.pool_timer");
  constexpr std::size_t kItems = 64;

  ThreadPool pool(GetParam());
  pool.parallel_for(0, kItems,
                    [&](std::size_t i) { timer.record_ns(i * 10, 1); });

  const MetricRow* row = find_row(snapshot(), "test.obs.pool_timer");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, MetricKind::kTimer);
  EXPECT_EQ(row->count, kItems);
  EXPECT_EQ(row->total_ns, 10u * (kItems * (kItems - 1) / 2));
}

TEST_P(MetricAggregation, GaugeMergesByMaximumAcrossWorkers) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  reset();
  static const Gauge gauge("test.obs.pool_gauge");
  constexpr std::size_t kItems = 100;

  ThreadPool pool(GetParam());
  pool.parallel_for(0, kItems, [&](std::size_t i) {
    gauge.set_max(static_cast<double>(i));
  });

  const MetricRow* row = find_row(snapshot(), "test.obs.pool_gauge");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, MetricKind::kGauge);
  EXPECT_EQ(row->count, kItems);  // set calls
  EXPECT_DOUBLE_EQ(row->value, static_cast<double>(kItems - 1));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MetricAggregation,
                         ::testing::Values(1, 2, 8));

TEST(Metrics, ExitedThreadsFoldIntoRetiredTotals) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  reset();
  static const Counter counter("test.obs.retired_counter");
  counter.add(5);
  std::thread t([] { counter.add(7); });
  t.join();  // the worker's sink retires; its total must survive
  const MetricRow* row = find_row(snapshot(), "test.obs.retired_counter");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 12u);
}

TEST(Metrics, SnapshotIsSortedByName) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  // Register in anti-alphabetical order; the snapshot must still sort.
  static const Counter z("test.obs.zz_sort_probe");
  static const Counter a("test.obs.aa_sort_probe");
  const std::vector<MetricRow> rows = snapshot();
  ASSERT_GE(rows.size(), 2u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].name, rows[i].name);
  }
}

TEST(Metrics, ResetZeroesLiveAndRetiredSinks) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  static const Counter counter("test.obs.reset_counter");
  counter.add(3);
  std::thread t([] { counter.add(4); });
  t.join();
  reset();
  const MetricRow* row = find_row(snapshot(), "test.obs.reset_counter");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 0u);
}

// ---------------------------------------------------------------- RunReport

TEST(RunReport, CarriesSchemaBinaryAndFields) {
  RunReport report("test_binary");
  report.set("setup.mesh", JsonValue("8x8"));
  report.set("threads", JsonValue(std::uint64_t{4}));
  report.note_artifact("bench_results/foo.csv");

  const std::string s = report.to_json();
  EXPECT_NE(s.find("\"schema\": \"nocmap.run_report/1\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("\"binary\": \"test_binary\""), std::string::npos);
  EXPECT_NE(s.find("\"mesh\": \"8x8\""), std::string::npos);
  EXPECT_NE(s.find("bench_results/foo.csv"), std::string::npos);
}

TEST(RunReport, AttachMetricsEmitsCountersTimersGauges) {
  if (compiled_in()) {
    reset();
    static const Counter counter("test.obs.report_counter");
    static const Timer timer("test.obs.report_timer");
    counter.add(9);
    timer.record_ns(2'000'000, 1);  // 2 ms
  }
  RunReport report("test_binary");
  report.attach_metrics();
  const JsonValue& root = report.root();
  ASSERT_NE(root.find("counters"), nullptr);
  ASSERT_NE(root.find("timers"), nullptr);
  ASSERT_NE(root.find("gauges"), nullptr);
  if (compiled_in()) {
    const JsonValue* counters = root.find("counters");
    ASSERT_NE(counters->find("test.obs.report_counter"), nullptr);
    const JsonValue* timers = root.find("timers");
    const JsonValue* t = timers->find("test.obs.report_timer");
    ASSERT_NE(t, nullptr);
    ASSERT_NE(t->find("total_ms"), nullptr);
    ASSERT_NE(t->find("count"), nullptr);
  }
}

TEST(RunReport, ScopedTimerFeedsTimerAndTrace) {
  if (!compiled_in()) GTEST_SKIP() << "built with NOCMAP_OBS=OFF";
  reset();
  clear_trace();
  enable_tracing();
  static const Timer timer("test.obs.scoped_timer");
  { const ScopedTimer scope(timer); }
  disable_tracing();

  const MetricRow* row = find_row(snapshot(), "test.obs.scoped_timer");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 1u);
  EXPECT_EQ(trace_event_count(), 1u);
  clear_trace();
}

}  // namespace
}  // namespace nocmap::obs
