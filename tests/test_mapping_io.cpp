#include "core/mapping_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace nocmap {
namespace {

Mapping sample_mapping() {
  Mapping m;
  m.thread_to_tile = {3, 0, 2, 1};
  return m;
}

TEST(MappingIo, RoundTripThroughStreams) {
  const Mapping original = sample_mapping();
  std::stringstream ss;
  write_mapping_csv(original, ss);
  const Mapping loaded = read_mapping_csv(ss);
  EXPECT_EQ(loaded.thread_to_tile, original.thread_to_tile);
}

TEST(MappingIo, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/nocmap_mapping.csv";
  save_mapping_csv(sample_mapping(), path);
  const Mapping loaded = load_mapping_csv(path);
  EXPECT_EQ(loaded.thread_to_tile, sample_mapping().thread_to_tile);
  std::remove(path.c_str());
}

TEST(MappingIo, HeaderRequired) {
  std::stringstream ss("0,3\n");
  EXPECT_THROW(read_mapping_csv(ss), Error);
}

TEST(MappingIo, EmptyRejected) {
  std::stringstream empty("");
  EXPECT_THROW(read_mapping_csv(empty), Error);
  std::stringstream header_only("thread,tile\n");
  EXPECT_THROW(read_mapping_csv(header_only), Error);
}

TEST(MappingIo, ThreadGapRejected) {
  std::stringstream ss("thread,tile\n0,1\n2,0\n");
  EXPECT_THROW(read_mapping_csv(ss), Error);
}

TEST(MappingIo, DuplicateTileRejected) {
  std::stringstream ss("thread,tile\n0,1\n1,1\n");
  EXPECT_THROW(read_mapping_csv(ss), Error);
}

TEST(MappingIo, OutOfRangeTileRejected) {
  std::stringstream ss("thread,tile\n0,0\n1,7\n");
  EXPECT_THROW(read_mapping_csv(ss), Error);
}

TEST(MappingIo, NonNumericRejected) {
  std::stringstream ss("thread,tile\n0,a\n");
  EXPECT_THROW(read_mapping_csv(ss), Error);
}

TEST(MappingIo, WindowsLineEndings) {
  std::stringstream ss("thread,tile\r\n0,1\r\n1,0\r\n");
  const Mapping m = read_mapping_csv(ss);
  EXPECT_EQ(m.thread_to_tile, (std::vector<TileId>{1, 0}));
}

TEST(MappingIo, MissingFileThrows) {
  EXPECT_THROW(load_mapping_csv("/nonexistent/m.csv"), Error);
  EXPECT_THROW(save_mapping_csv(sample_mapping(), "/nonexistent/m.csv"),
               Error);
}

}  // namespace
}  // namespace nocmap
