#include "netsim/router.h"

#include <gtest/gtest.h>

namespace nocmap {
namespace {

NetworkConfig small_config() {
  NetworkConfig c;
  c.vcs_per_port = 2;
  c.buffer_depth = 3;
  c.router_pipeline = 3;
  return c;
}

Flit make_flit(PacketId id, std::uint32_t index, std::uint32_t total,
               TileId dst) {
  Flit f;
  f.packet = id;
  f.index = index;
  f.is_head = (index == 0);
  f.is_tail = (index + 1 == total);
  f.dst = dst;
  return f;
}

TEST(PortDir, OppositeIsInvolution) {
  for (auto d : {PortDir::kNorth, PortDir::kEast, PortDir::kSouth,
                 PortDir::kWest, PortDir::kLocal}) {
    EXPECT_EQ(opposite(opposite(d)), d);
  }
  EXPECT_EQ(opposite(PortDir::kNorth), PortDir::kSouth);
  EXPECT_EQ(opposite(PortDir::kEast), PortDir::kWest);
}

TEST(Router, AcceptsUpToBufferDepth) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(r.can_accept(PortDir::kWest, 0));
    r.receive_flit(PortDir::kWest, 0, make_flit(1, i, 5, 10), 0);
  }
  EXPECT_FALSE(r.can_accept(PortDir::kWest, 0));
  EXPECT_EQ(r.buffered_flits(), 3u);
  EXPECT_THROW(r.receive_flit(PortDir::kWest, 0, make_flit(1, 3, 5, 10), 0),
               Error);
}

TEST(Router, FlitNotEligibleBeforePipelineDelay) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());  // tile (1,1)
  r.receive_flit(PortDir::kLocal, 0, make_flit(1, 0, 1, 6), 0);  // to (1,2)

  std::vector<Departure> out;
  r.tick(0, out);
  EXPECT_TRUE(out.empty());
  r.tick(2, out);
  EXPECT_TRUE(out.empty());
  r.tick(3, out);  // enqueued 0 + pipeline 3
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, PortDir::kEast);
  EXPECT_EQ(out[0].in_port, PortDir::kLocal);
}

TEST(Router, XyRoutingGoesXFirst) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());  // tile (1,1)
  // Destination (3,3): must go East first (X before Y).
  r.receive_flit(PortDir::kLocal, 0, make_flit(1, 0, 1, 15), 0);
  std::vector<Departure> out;
  r.tick(3, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, PortDir::kEast);
}

TEST(Router, RoutesToLocalWhenAtDestination) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 0, 1, 5), 0);  // dst == id
  std::vector<Departure> out;
  r.tick(3, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, PortDir::kLocal);
}

TEST(Router, WormholeKeepsPacketContiguousInVc) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  // Three flits of one packet.
  for (std::uint32_t i = 0; i < 3; ++i) {
    r.receive_flit(PortDir::kWest, 0, make_flit(1, i, 3, 6), 0);
  }
  std::vector<Departure> out;
  for (Cycle now = 3; now <= 5; ++now) r.tick(now, out);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].flit.index, i);  // in order
    EXPECT_EQ(out[i].out_vc, out[0].out_vc);  // same VC throughout
  }
}

TEST(Router, StallsWhenNoCredits) {
  const Mesh mesh = Mesh::square(4);
  NetworkConfig cfg = small_config();
  cfg.buffer_depth = 1;  // single credit per VC
  Router r(5, mesh, cfg);
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 0, 2, 6), 0);
  std::vector<Departure> out;
  r.tick(3, out);
  ASSERT_EQ(out.size(), 1u);  // head leaves, consuming the only credit
  out.clear();
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 1, 2, 6), 3);
  r.tick(7, out);
  EXPECT_TRUE(out.empty());  // tail blocked: no credit
  r.receive_credit(PortDir::kEast, out.empty() ? 0 : 0);
  // Credit was returned to VC 0 of the East output (the one used).
  r.tick(8, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].flit.is_tail);
}

TEST(Router, TailReleasesOutputVc) {
  const Mesh mesh = Mesh::square(4);
  NetworkConfig cfg = small_config();
  cfg.vcs_per_port = 1;  // single VC: second packet must reuse it
  Router r(5, mesh, cfg);
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 0, 1, 6), 0);
  std::vector<Departure> out;
  r.tick(3, out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  // Second packet in the same input VC gets the output VC after the tail.
  r.receive_flit(PortDir::kWest, 0, make_flit(2, 0, 1, 6), 4);
  r.tick(7, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].flit.packet, 2u);
}

TEST(Router, OneGrantPerOutputPortPerCycle) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  // Two packets from different input ports, both heading East.
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 0, 1, 6), 0);
  r.receive_flit(PortDir::kNorth, 0, make_flit(2, 0, 1, 6), 0);
  std::vector<Departure> out;
  r.tick(3, out);
  EXPECT_EQ(out.size(), 1u);
  r.tick(4, out);
  EXPECT_EQ(out.size(), 2u);  // the other one follows next cycle
}

TEST(Router, DistinctOutputsServedSameCycle) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  r.receive_flit(PortDir::kWest, 0, make_flit(1, 0, 1, 6), 0);   // East
  r.receive_flit(PortDir::kNorth, 0, make_flit(2, 0, 1, 9), 0);  // South
  std::vector<Departure> out;
  r.tick(3, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Router, ActivityCountersTrackEvents) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  for (std::uint32_t i = 0; i < 2; ++i) {
    r.receive_flit(PortDir::kWest, 0, make_flit(1, i, 2, 6), 0);
  }
  std::vector<Departure> out;
  for (Cycle now = 3; now <= 4; ++now) r.tick(now, out);
  const ActivityCounters& a = r.activity();
  EXPECT_EQ(a.buffer_writes, 2u);
  EXPECT_EQ(a.buffer_reads, 2u);
  EXPECT_EQ(a.crossbar_traversals, 2u);
  EXPECT_EQ(a.sw_arbitrations, 2u);
  EXPECT_EQ(a.vc_allocations, 1u);  // one per packet
  r.reset_activity();
  EXPECT_EQ(r.activity().buffer_writes, 0u);
}

TEST(Router, CreditOverflowDetected) {
  const Mesh mesh = Mesh::square(4);
  Router r(5, mesh, small_config());
  // Buffers start at full credit; an extra credit is a protocol violation.
  EXPECT_THROW(r.receive_credit(PortDir::kEast, 0), Error);
}

}  // namespace
}  // namespace nocmap
