// Golden-equivalence gate for the netsim engine: every scenario below must
// reproduce, bit for bit, the per-app APLs and exact packet/flit counts the
// original per-router/per-flit heap engine produced (captured before the
// structure-of-arrays rewrite; see DESIGN.md §12). The scenarios span
// routing algorithms, arbitration policies, burstiness, coherence
// forwarding, micro-architecture corners (1 VC / depth 1 / 2-cycle links),
// congestion, a zero-warmup run, and a paper-scale 8×8 SSS mapping, so any
// change to tick ordering, arbitration RNG draws, or accumulation order
// shows up as a hexfloat mismatch.
//
// If an *intentional* behaviour change lands, re-capture the table with the
// probe documented in DESIGN.md §12 and justify the diff in the PR.
#include "netsim/sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/sss_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem small_problem() {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(2);
  apps[0].name = "light";
  apps[0].threads.assign(8, ThreadProfile{2.0, 0.3});
  apps[1].name = "heavy";
  apps[1].threads.assign(8, ThreadProfile{8.0, 1.0});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload(std::move(apps)));
}

struct GoldenCase {
  const char* tag;
  std::vector<double> apl;  // per-app, hexfloat-exact
  double max_apl;
  double dev_apl;
  double g_apl;
  std::uint64_t packets_measured;
  std::uint64_t local_accesses;
  std::uint64_t flits_injected;
  std::uint64_t flits_ejected;
};

// Captured from the seed engine (hexfloats are bit-exact doubles).
const std::vector<GoldenCase>& golden_table() {
  static const std::vector<GoldenCase> table = {
      {"default-4x4",
       {0x1.ea5f5682a5f5bp+3, 0x1.dfc65485b8cfdp+3},
       0x1.ea5f5682a5f5bp+3, 0x1.53203f9da4bcp-3, 0x1.e1ede8bd85f53p+3,
       3566, 316, 10302, 10302},
      {"congested-8x",
       {0x1.09a210bd6e321p+4, 0x1.1aa739b6eef32p+4},
       0x1.1aa739b6eef32p+4, 0x1.10528f980c11p-1, 0x1.172db5f77ba19p+4,
       28915, 2456, 83676, 83676},
      {"bursty-3x",
       {0x1.ed8fe44308aacp+3, 0x1.09bbee8274ef7p+4},
       0x1.09bbee8274ef7p+4, 0x1.2f3fc60f09a1p-1, 0x1.053a07c3ce1d1p+4,
       7451, 624, 21828, 21828},
      {"o1turn-vc4",
       {0x1.d9e4791e47926p+3, 0x1.f13d743c668a4p+3},
       0x1.f13d743c668a4p+3, 0x1.758fb1e1ef7ep-2, 0x1.ec7e761158b15p+3,
       3660, 282, 11166, 11166},
      {"yx",
       {0x1.eb6f46508dfebp+3, 0x1.e3345f38c44d7p+3},
       0x1.eb6f46508dfebp+3, 0x1.075ce2f93628p-3, 0x1.e4f1fe8e5dd9fp+3,
       1773, 142, 5442, 5442},
      {"distance-weighted-4x",
       {0x1.e9e2fe5046282p+3, 0x1.050bf7440a20fp+4},
       0x1.050bf7440a20fp+4, 0x1.01a781be70cep-1, 0x1.01bc02c66ad79p+4,
       7380, 570, 22578, 22578},
      {"forwarding",
       {0x1.d303f9303f93p+3, 0x1.d1e7cb4c7297bp+3},
       0x1.d303f9303f93p+3, 0x1.1c2de3ccfb5p-6, 0x1.d2243138b3843p+3,
       2122, 194, 5532, 5532},
      {"vc1-d1-p1-l2",
       {0x1.3ac7df24f66abp+4, 0x1.3de7d40d2f3e7p+4},
       0x1.3de7d40d2f3e7p+4, 0x1.8ffa741c69ep-4, 0x1.3d3efd1c50e77p+4,
       1772, 142, 5442, 5442},
      {"no-warmup",
       {0x1.fe86f65c1dfe6p+3, 0x1.de01ce103e91bp+3},
       0x1.fe86f65c1dfe6p+3, 0x1.0429425efb658p-1, 0x1.e5233ab73151cp+3,
       1090, 80, 3036, 3036},
      {"c1-sss-8x8",
       {0x1.987ea9d81bf6cp+4, 0x1.96755d60ffd9ep+4, 0x1.987228b448af5p+4,
        0x1.9cad162ee6d15p+4},
       0x1.9cad162ee6d15p+4, 0x1.22036d64defbep-3, 0x1.99fbf2b28408p+4,
       20091, 410, 65244, 65244},
  };
  return table;
}

SimConfig config_for(const char* tag) {
  SimConfig c;
  c.warmup_cycles = 1000;
  c.measure_cycles = 20000;
  const std::string t = tag;
  if (t == "congested-8x") {
    c.traffic.injection_scale = 8.0;
  } else if (t == "bursty-3x") {
    c.measure_cycles = 15000;
    c.traffic.injection_scale = 3.0;
    c.traffic.bursty = true;
    c.traffic.burst_duty = 0.25;
  } else if (t == "o1turn-vc4") {
    c.measure_cycles = 10000;
    c.network.routing = RoutingAlgo::kO1Turn;
    c.network.vcs_per_port = 4;
    c.traffic.injection_scale = 2.0;
  } else if (t == "yx") {
    c.measure_cycles = 10000;
    c.network.routing = RoutingAlgo::kYX;
  } else if (t == "distance-weighted-4x") {
    c.measure_cycles = 10000;
    c.network.arbitration = Arbitration::kDistanceWeighted;
    c.traffic.injection_scale = 4.0;
  } else if (t == "forwarding") {
    c.measure_cycles = 10000;
    c.traffic.forward_probability = 0.5;
  } else if (t == "vc1-d1-p1-l2") {
    c.measure_cycles = 10000;
    c.network.vcs_per_port = 1;
    c.network.buffer_depth = 1;
    c.network.router_pipeline = 1;
    c.network.link_latency = 2;
  } else if (t == "no-warmup") {
    c.warmup_cycles = 0;
    c.measure_cycles = 6000;
  } else if (t == "c1-sss-8x8") {
    c.warmup_cycles = 2000;
    c.measure_cycles = 20000;
  }
  return c;
}

void expect_matches(const SimResult& r, const GoldenCase& g) {
  ASSERT_EQ(r.apl.size(), g.apl.size());
  for (std::size_t a = 0; a < g.apl.size(); ++a) {
    EXPECT_EQ(r.apl[a], g.apl[a]) << "app " << a;
  }
  EXPECT_EQ(r.max_apl, g.max_apl);
  EXPECT_EQ(r.dev_apl, g.dev_apl);
  EXPECT_EQ(r.g_apl, g.g_apl);
  EXPECT_EQ(r.packets_measured, g.packets_measured);
  EXPECT_EQ(r.local_accesses, g.local_accesses);
  EXPECT_EQ(r.flits_injected, g.flits_injected);
  EXPECT_EQ(r.flits_ejected, g.flits_ejected);
}

// Every pinned scenario must hit the golden numbers at every partition
// width: 1 (serial engine), 2, and 8 row-band domains. The partitioned
// step's determinism argument (DESIGN.md §16) is exactly the claim under
// test — domain decomposition, halo exchange, and the commit barrier must
// be invisible in the results, down to the last bit of every hexfloat.
const std::size_t kGoldenWorkerCounts[] = {1, 2, 8};

TEST(NetsimGolden, SmallProblemScenariosAreBitIdenticalToSeedEngine) {
  const ObmProblem p = small_problem();
  const Mapping id16 = p.identity_mapping();
  for (const GoldenCase& g : golden_table()) {
    if (std::string(g.tag) == "c1-sss-8x8") continue;
    for (const std::size_t workers : kGoldenWorkerCounts) {
      SCOPED_TRACE(std::string(g.tag) + " workers=" +
                   std::to_string(workers));
      SimConfig c = config_for(g.tag);
      c.sim_workers = workers;
      expect_matches(run_simulation(p, id16, c), g);
    }
  }
}

TEST(NetsimGolden, PaperScaleSssMappingIsBitIdenticalToSeedEngine) {
  const Mesh mesh = Mesh::square(8);
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     synthesize_workload(parsec_config("C1"), 20140519));
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  const GoldenCase& g = golden_table().back();
  ASSERT_STREQ(g.tag, "c1-sss-8x8");
  for (const std::size_t workers : kGoldenWorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    SimConfig c = config_for(g.tag);
    c.sim_workers = workers;
    expect_matches(run_simulation(p, m, c), g);
  }
}

// The batch API must agree exactly with serial run_simulation calls — a
// batch is a pure fan-out with slotted results, so this holds at any
// worker count (test_parallel_determinism covers 1/2/8 workers).
TEST(NetsimGolden, BatchMatchesSerialRuns) {
  const ObmProblem p = small_problem();
  const Mapping id16 = p.identity_mapping();
  const char* tags[] = {"default-4x4", "yx", "forwarding"};
  std::vector<SimConfig> configs;
  std::vector<BatchScenario> batch;
  for (const char* tag : tags) configs.push_back(config_for(tag));
  for (const SimConfig& c : configs) batch.push_back({&p, &id16, c});

  ParallelConfig serial;
  serial.num_threads = 1;
  const std::vector<SimResult> results = run_simulation_batch(batch, serial);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(tags[i]);
    const SimResult direct = run_simulation(p, id16, configs[i]);
    ASSERT_EQ(results[i].apl.size(), direct.apl.size());
    for (std::size_t a = 0; a < direct.apl.size(); ++a) {
      EXPECT_EQ(results[i].apl[a], direct.apl[a]);
    }
    EXPECT_EQ(results[i].g_apl, direct.g_apl);
    EXPECT_EQ(results[i].packets_measured, direct.packets_measured);
    EXPECT_EQ(results[i].flits_injected, direct.flits_injected);
  }
}

}  // namespace
}  // namespace nocmap
