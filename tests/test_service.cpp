// Online mapping service (src/service/): replay determinism across worker
// counts, warm-vs-cold workspace agreement, admission control, migration
// budgets, and the incremental objective vs the batch evaluator.
#include "service/replay.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/metrics.h"

namespace nocmap::service {
namespace {

TileLatencyModel test_chip() {
  return TileLatencyModel(Mesh::square(6), LatencyParams{});
}

std::vector<Event> test_trace(std::size_t num_events,
                              std::uint64_t seed = 21) {
  TraceConfig config;
  config.seed = seed;
  config.num_events = num_events;
  config.num_tiles = 36;
  config.max_threads_per_app = 9;
  return generate_trace(config);
}

Application uniform_app(const std::string& name, std::size_t threads,
                        double cache_rate = 20.0, double memory_rate = 4.0) {
  Application app;
  app.name = name;
  app.threads.assign(threads, ThreadProfile{cache_rate, memory_rate});
  return app;
}

Event arrival(std::uint64_t id, Application app) {
  return Event{EventKind::kArrival, id, std::move(app)};
}

// --------------------------------------------------------------------------
// Determinism

TEST(ServiceReplay, DecisionsBitIdenticalAcrossWorkerCounts) {
  // A tight threshold keeps the fallback (the only parallel component)
  // firing throughout the replay, so the worker sweep exercises the
  // parallel SSS engine, not just the serial incremental path.
  const std::vector<Event> events = test_trace(120);
  std::vector<ReplayStats> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ServiceConfig config;
    config.migration_budget = 6;
    config.degradation_threshold = 1.05;
    config.sss.parallel = {workers, true};
    MappingService engine(test_chip(), config);
    runs.push_back(replay_trace(engine, events));
  }
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_GT(runs[0].fallbacks, 0u)
      << "threshold never tripped — the worker sweep tested nothing";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].digest, runs[i].digest);
    ASSERT_EQ(runs[0].decisions.size(), runs[i].decisions.size());
    for (std::size_t e = 0; e < runs[0].decisions.size(); ++e) {
      EXPECT_EQ(runs[0].decisions[e], runs[i].decisions[e])
          << "decision " << e << " diverged at worker count "
          << (i == 1 ? 2 : 8);
    }
  }
}

TEST(ServiceReplay, ReplayIsRunToRunDeterministic) {
  const std::vector<Event> events = test_trace(100, 33);
  ServiceConfig config;
  config.migration_budget = 4;
  MappingService a(test_chip(), config);
  MappingService b(test_chip(), config);
  EXPECT_EQ(replay_trace(a, events).digest, replay_trace(b, events).digest);
}

TEST(ServiceReplay, WarmAndColdWorkspacesAgree) {
  // Warm starts are a speed heuristic: they may pick a different tied
  // optimum, but never a worse one. Decisions must agree on everything
  // except (possibly) which equal-cost placement was chosen — same
  // admissions, same objective, same lower bound, same chip usage.
  const std::vector<Event> events = test_trace(150, 5);
  ServiceConfig warm_config;
  warm_config.migration_budget = 5;
  ServiceConfig cold_config = warm_config;
  cold_config.warm_start = false;
  MappingService warm(test_chip(), warm_config);
  MappingService cold(test_chip(), cold_config);
  const ReplayStats w = replay_trace(warm, events);
  const ReplayStats c = replay_trace(cold, events);

  ASSERT_EQ(w.decisions.size(), c.decisions.size());
  for (std::size_t e = 0; e < w.decisions.size(); ++e) {
    const Decision& dw = w.decisions[e];
    const Decision& dc = c.decisions[e];
    EXPECT_EQ(dw.accepted, dc.accepted) << "event " << e;
    EXPECT_EQ(dw.placed_threads, dc.placed_threads) << "event " << e;
    EXPECT_EQ(dw.residents, dc.residents) << "event " << e;
    EXPECT_EQ(dw.occupied_tiles, dc.occupied_tiles) << "event " << e;
    EXPECT_NEAR(dw.objective, dc.objective,
                1e-9 * (1.0 + dc.objective))
        << "event " << e;
    EXPECT_NEAR(dw.lower_bound, dc.lower_bound,
                1e-9 * (1.0 + dc.lower_bound))
        << "event " << e;
  }
}

// --------------------------------------------------------------------------
// Admission control

TEST(Service, RejectsArrivalWhenChipFull) {
  MappingService engine(test_chip());
  const Decision big = engine.handle(arrival(1, uniform_app("big", 36)));
  EXPECT_TRUE(big.accepted);
  EXPECT_EQ(big.placed_threads, 36u);
  EXPECT_EQ(engine.occupied_tiles(), 36u);

  const Decision overflow =
      engine.handle(arrival(2, uniform_app("late", 1)));
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(engine.occupied_tiles(), 36u);
  EXPECT_EQ(engine.residents().size(), 1u);

  // Free the chip and the same arrival is admitted.
  engine.handle(Event{EventKind::kDeparture, 1, {}});
  EXPECT_EQ(engine.occupied_tiles(), 0u);
  EXPECT_TRUE(engine.handle(arrival(2, uniform_app("late", 1))).accepted);
}

TEST(Service, RejectsOversizedEmptyAndDuplicateArrivals) {
  MappingService engine(test_chip());
  EXPECT_FALSE(engine.handle(arrival(1, uniform_app("huge", 37))).accepted);
  EXPECT_FALSE(engine.handle(arrival(2, uniform_app("empty", 0))).accepted);
  EXPECT_TRUE(engine.handle(arrival(3, uniform_app("ok", 4))).accepted);
  EXPECT_FALSE(engine.handle(arrival(3, uniform_app("dup", 4))).accepted);
  EXPECT_EQ(engine.residents().size(), 1u);
}

TEST(Service, RejectsUnknownOrMismatchedPhaseChange) {
  MappingService engine(test_chip());
  engine.handle(arrival(1, uniform_app("app", 6)));
  EXPECT_FALSE(
      engine.handle(Event{EventKind::kPhaseChange, 9, uniform_app("x", 6)})
          .accepted);
  EXPECT_FALSE(
      engine.handle(Event{EventKind::kPhaseChange, 1, uniform_app("x", 5)})
          .accepted);
  EXPECT_TRUE(
      engine.handle(Event{EventKind::kPhaseChange, 1,
                          uniform_app("x", 6, 5.0, 30.0)})
          .accepted);
  EXPECT_FALSE(
      engine.handle(Event{EventKind::kDeparture, 9, {}}).accepted);
}

// --------------------------------------------------------------------------
// Migration budget

TEST(Service, BudgetZeroNeverMovesResidentThreads) {
  const std::vector<Event> events = test_trace(150, 9);
  ServiceConfig config;
  config.migration_budget = 0;
  MappingService engine(test_chip(), config);
  const ReplayStats stats = replay_trace(engine, events);
  EXPECT_EQ(stats.moved_threads, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);  // no budget, no fallback to spend it on
}

TEST(Service, BudgetCapsEveryDecision) {
  const std::vector<Event> events = test_trace(150, 13);
  ServiceConfig config;
  config.migration_budget = 3;
  config.degradation_threshold = 1.05;  // make the fallback compete for it
  MappingService engine(test_chip(), config);
  const ReplayStats stats = replay_trace(engine, events);
  for (std::size_t e = 0; e < stats.decisions.size(); ++e) {
    EXPECT_LE(stats.decisions[e].moved_threads, 3u) << "event " << e;
  }
}

// --------------------------------------------------------------------------
// Objective bookkeeping

TEST(Service, ObjectiveMatchesBatchEvaluator) {
  const std::vector<Event> events = test_trace(80, 17);
  MappingService engine(test_chip());
  replay_trace(engine, events);
  ASSERT_FALSE(engine.residents().empty());

  const ObmProblem snapshot = engine.snapshot_problem();
  const Mapping placement = engine.snapshot_mapping();
  ASSERT_TRUE(placement.is_valid_permutation(36));
  const LatencyReport report = evaluate(snapshot, placement);
  EXPECT_NEAR(engine.objective(), report.max_apl,
              1e-9 * (1.0 + report.max_apl));
  EXPECT_LE(engine.lower_bound(),
            engine.objective() * (1.0 + 1e-9));
}

TEST(Service, SimulateSnapshotMatchesDirectSimAndIsWorkerInvariant) {
  // The cycle-accurate validation of the final placement must equal a
  // direct run_simulation on the snapshot — and be bit-identical whether
  // the one simulation is stepped serially or spatially partitioned.
  MappingService service(test_chip(), ServiceConfig{});
  const std::vector<Event> events = test_trace(200);
  replay_trace(service, events);

  SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 1500;
  const SimResult direct = run_simulation(
      service.snapshot_problem(), service.snapshot_mapping(), config);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(workers);
    config.sim_workers = workers;
    const SimResult sim = simulate_snapshot(service, config);
    EXPECT_EQ(sim.g_apl, direct.g_apl);
    EXPECT_EQ(sim.max_apl, direct.max_apl);
    EXPECT_EQ(sim.packets_measured, direct.packets_measured);
    EXPECT_EQ(sim.flits_injected, direct.flits_injected);
    EXPECT_EQ(sim.flits_ejected, direct.flits_ejected);
  }
}

TEST(Service, TraceGeneratorIsDeterministicAndCapacityAware) {
  TraceConfig config;
  config.seed = 77;
  config.num_events = 300;
  config.num_tiles = 36;
  const std::vector<Event> a = generate_trace(config);
  const std::vector<Event> b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].app_id, b[i].app_id);
    EXPECT_EQ(a[i].app.num_threads(), b[i].app.num_threads());
  }
  // Departures and phase changes always reference an application that a
  // replaying service will actually have admitted.
  MappingService engine(test_chip());
  const ReplayStats stats = replay_trace(engine, a);
  for (std::size_t i = 0; i < stats.decisions.size(); ++i) {
    if (a[i].kind != EventKind::kArrival) {
      EXPECT_TRUE(stats.decisions[i].accepted)
          << event_kind_name(a[i].kind) << " " << i
          << " referenced a non-resident application";
    }
  }
}

}  // namespace
}  // namespace nocmap::service
