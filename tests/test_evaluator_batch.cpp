// Bit-identity contract of the batched candidate evaluator (DESIGN.md §:
// "Batched candidate evaluation"): every lane scored by BatchEvaluator must
// equal the scalar MappingEvaluator's objective on the same permutation to
// the last bit — the mappers' search decisions are rewired through the
// batched pass on that guarantee. Also covers the pruned variant's
// postcondition, the candidate-major score_rows path, the const group/swap
// prescoring entry points on MappingEvaluator, worker-count invariance of a
// fitness fan-out through ParallelTrialRunner::for_each_batch, and the
// fast_exp_neg kernel the annealer's acceptance test runs on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "core/batch_eval.h"
#include "core/cost_cache.h"
#include "core/evaluator.h"
#include "core/parallel.h"
#include "core/problem.h"
#include "util/fastmath.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem make_problem(std::uint32_t side, std::uint64_t seed) {
  const Mesh mesh = Mesh::square(side);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  const auto configs = parsec_table3_configs();
  const ConfigSpec& spec = configs[seed % configs.size()];
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(spec, 500 + seed, opt));
}

std::vector<TileId> random_perm(std::size_t n, Rng& rng) {
  std::vector<TileId> perm(n);
  std::iota(perm.begin(), perm.end(), TileId{0});
  rng.shuffle(perm);
  return perm;
}

double scalar_objective(const ObmProblem& p, const ThreadCostCache& cache,
                        std::vector<TileId> perm) {
  Mapping m;
  m.thread_to_tile = std::move(perm);
  return MappingEvaluator(p, std::move(m), cache).objective();
}

TEST(BatchEvaluator, BitIdenticalToScalarAcrossSizes) {
  for (const std::uint32_t side : {4u, 8u}) {
    const ObmProblem p = make_problem(side, side);
    const std::size_t n = p.num_threads();
    const ThreadCostCache cache(p.workload(), p.model());
    const BatchEvaluator evaluator(p, cache);
    Rng rng(11 + side);

    constexpr std::size_t kCount = 64;
    CandidateBatch batch(n, kCount);
    std::vector<std::vector<TileId>> perms;
    for (std::size_t b = 0; b < kCount; ++b) {
      perms.push_back(random_perm(n, rng));
      batch.load(b, perms.back());
    }
    std::vector<double> scores(kCount);
    evaluator.score(batch, kCount, scores);
    for (std::size_t b = 0; b < kCount; ++b) {
      EXPECT_EQ(scores[b], scalar_objective(p, cache, perms[b]))
          << "lane " << b << " side " << side;
    }
  }
}

TEST(BatchEvaluator, RaggedFinalBlockAndSingleLane) {
  const ObmProblem p = make_problem(8, 1);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  const BatchEvaluator evaluator(p, cache);
  Rng rng(29);

  // 137 = 128 + 9: one full internal sub-block plus a ragged tail; also
  // exercise count < capacity and the K=1 degenerate batch.
  for (const std::size_t count :
       {std::size_t{137}, std::size_t{5}, std::size_t{1}}) {
    CandidateBatch batch(n, count == 5 ? 8 : count);  // capacity may exceed
    std::vector<std::vector<TileId>> perms;
    for (std::size_t b = 0; b < count; ++b) {
      perms.push_back(random_perm(n, rng));
      batch.load(b, perms.back());
    }
    std::vector<double> scores(count, -1.0);
    evaluator.score(batch, count, scores);
    for (std::size_t b = 0; b < count; ++b) {
      EXPECT_EQ(scores[b], scalar_objective(p, cache, perms[b]))
          << "lane " << b << " of " << count;
    }
  }
}

TEST(BatchEvaluator, ScoreRowsMatchesTransposedScore) {
  const ObmProblem p = make_problem(8, 2);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  const BatchEvaluator evaluator(p, cache);
  Rng rng(31);

  constexpr std::size_t kCount = 23;  // deliberately not a lane multiple
  std::vector<TileId> rows(kCount * n);
  CandidateBatch batch(n, kCount);
  for (std::size_t b = 0; b < kCount; ++b) {
    const std::vector<TileId> perm = random_perm(n, rng);
    std::copy(perm.begin(), perm.end(), rows.begin() + b * n);
    batch.load(b, perm);
  }
  std::vector<double> transposed(kCount), row_major(kCount);
  evaluator.score(batch, kCount, transposed);
  evaluator.score_rows(rows.data(), n, kCount, row_major);
  for (std::size_t b = 0; b < kCount; ++b) {
    EXPECT_EQ(row_major[b], transposed[b]) << "lane " << b;
  }
}

TEST(BatchEvaluator, PrunedScoresKeepTheExactWinner) {
  const ObmProblem p = make_problem(8, 3);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  const BatchEvaluator evaluator(p, cache);
  Rng rng(37);

  constexpr std::size_t kCount = 96;
  CandidateBatch batch(n, kCount);
  for (std::size_t b = 0; b < kCount; ++b) batch.load(b, random_perm(n, rng));
  std::vector<double> exact(kCount), pruned(kCount);
  evaluator.score(batch, kCount, exact);

  // Sweep cutoffs from permissive to aggressive; the postcondition must
  // hold for each: below-cutoff lanes are bit-exact, at-or-above-cutoff
  // lanes are only guaranteed to be >= cutoff (like the true score).
  std::vector<double> cutoffs = {1e300, exact[0], exact[kCount / 2], 0.0};
  for (const double cutoff : cutoffs) {
    evaluator.score_pruned(batch, kCount, cutoff, pruned);
    for (std::size_t b = 0; b < kCount; ++b) {
      if (pruned[b] < cutoff) {
        EXPECT_EQ(pruned[b], exact[b]) << "lane " << b;
      } else {
        EXPECT_GE(exact[b], cutoff) << "lane " << b;
      }
    }
  }
}

TEST(MappingEvaluatorBatch, GroupCandidatesBitMatchApplyGroup) {
  const ObmProblem p = make_problem(8, 4);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  Rng rng(41);
  MappingEvaluator eval(p, Mapping{random_perm(n, rng)}, cache);

  // Random 3-thread window, all 6 within-group permutations as candidates.
  const std::vector<std::size_t> threads = {2, 17, 40};
  std::vector<TileId> held;
  for (const std::size_t j : threads) held.push_back(eval.mapping().tile_of(j));
  std::vector<std::vector<TileId>> cands;
  std::vector<TileId> perm = held;
  std::sort(perm.begin(), perm.end());
  do {
    cands.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));

  const std::size_t count = cands.size();
  std::vector<TileId> transposed(threads.size() * count);
  for (std::size_t x = 0; x < threads.size(); ++x) {
    for (std::size_t b = 0; b < count; ++b) {
      transposed[x * count + b] = cands[b][x];
    }
  }
  std::vector<double> scores(count);
  eval.score_group_candidates(threads, transposed.data(), count, scores);

  for (std::size_t b = 0; b < count; ++b) {
    eval.apply_group(threads, cands[b]);
    EXPECT_EQ(scores[b], eval.objective()) << "candidate " << b;
    eval.apply_group(threads, held);  // revert
  }
}

TEST(MappingEvaluatorBatch, SwapCandidatesTrackTheTrueObjective) {
  const ObmProblem p = make_problem(8, 5);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  Rng rng(43);
  MappingEvaluator eval(p, Mapping{random_perm(n, rng)}, cache);

  std::vector<SwapProposal> proposals(48);
  for (SwapProposal& prop : proposals) {
    prop.j1 = rng.uniform_u32(static_cast<std::uint32_t>(n));
    prop.j2 = rng.uniform_u32(static_cast<std::uint32_t>(n));
  }
  std::vector<double> scores(proposals.size());
  eval.score_swap_candidates(proposals, scores);
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    eval.swap_threads(proposals[i].j1, proposals[i].j2);
    const double truth = eval.objective();
    eval.swap_threads(proposals[i].j1, proposals[i].j2);  // revert
    // Delta substitution may differ from the canonical recompute in the
    // last ulps (documented contract), never more.
    EXPECT_NEAR(scores[i], truth, 1e-9 * std::max(1.0, truth))
        << "proposal " << i;
  }
}

TEST(BatchEvaluator, FanOutIsWorkerCountInvariant) {
  const ObmProblem p = make_problem(8, 6);
  const std::size_t n = p.num_threads();
  const ThreadCostCache cache(p.workload(), p.model());
  const BatchEvaluator evaluator(p, cache);
  Rng rng(47);

  constexpr std::size_t kPop = 70;  // ragged over the batch size below
  std::vector<TileId> rows(kPop * n);
  for (std::size_t b = 0; b < kPop; ++b) {
    const std::vector<TileId> perm = random_perm(n, rng);
    std::copy(perm.begin(), perm.end(), rows.begin() + b * n);
  }

  auto run = [&](std::size_t workers) {
    std::vector<double> fit(kPop, -1.0);
    ParallelTrialRunner runner(ParallelConfig{workers, true});
    runner.for_each_batch(kPop, 16, [&](std::size_t lo, std::size_t hi) {
      evaluator.score_rows(rows.data() + lo * n, n, hi - lo,
                           std::span<double>(fit.data() + lo, hi - lo));
    });
    return fit;
  };

  const std::vector<double> serial = run(1);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const std::vector<double> parallel = run(workers);
    for (std::size_t b = 0; b < kPop; ++b) {
      EXPECT_EQ(parallel[b], serial[b])
          << "slot " << b << " at " << workers << " workers";
    }
  }
}

TEST(FastMath, ExpNegMatchesLibmTo1e8) {
  // The annealer compares fast_exp_neg against a 2^-32-resolution uniform
  // variate; 1e-8 relative error is two orders tighter than it needs.
  for (double x = 0.0; x < 60.0; x += 0.0137) {
    const double got = fast_exp_neg(x);
    const double want = std::exp(-x);
    EXPECT_NEAR(got, want, 1e-8 * want) << "x=" << x;
  }
  EXPECT_EQ(fast_exp_neg(0.0), 1.0);
  EXPECT_EQ(fast_exp_neg(2000.0), 0.0);  // past the flush-to-zero threshold
  // Monotone non-increasing across the flush boundary.
  EXPECT_GE(fast_exp_neg(700.0), 0.0);
  EXPECT_LE(fast_exp_neg(700.0), fast_exp_neg(699.0));
}

}  // namespace
}  // namespace nocmap
