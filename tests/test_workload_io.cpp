#include "workload/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/synthesis.h"

namespace nocmap {
namespace {

Workload sample_workload() {
  Application a;
  a.name = "web";
  a.threads = {{6.25, 0.81}, {5.9, 0.77}};
  Application b;
  b.name = "db";
  b.threads = {{12.4, 2.05}};
  return Workload({a, b});
}

TEST(WorkloadIo, RoundTripThroughStreams) {
  const Workload original = sample_workload();
  std::stringstream ss;
  write_workload_csv(original, ss);
  const Workload loaded = read_workload_csv(ss);

  ASSERT_EQ(loaded.num_applications(), original.num_applications());
  ASSERT_EQ(loaded.num_threads(), original.num_threads());
  for (std::size_t a = 0; a < original.num_applications(); ++a) {
    EXPECT_EQ(loaded.application(a).name, original.application(a).name);
  }
  for (std::size_t j = 0; j < original.num_threads(); ++j) {
    EXPECT_DOUBLE_EQ(loaded.thread(j).cache_rate,
                     original.thread(j).cache_rate);
    EXPECT_DOUBLE_EQ(loaded.thread(j).memory_rate,
                     original.thread(j).memory_rate);
  }
}

TEST(WorkloadIo, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/nocmap_workload.csv";
  const Workload original =
      synthesize_workload(parsec_config("C2"), 13);
  save_workload_csv(original, path);
  const Workload loaded = load_workload_csv(path);
  ASSERT_EQ(loaded.num_threads(), original.num_threads());
  for (std::size_t j = 0; j < original.num_threads(); ++j) {
    EXPECT_NEAR(loaded.thread(j).cache_rate, original.thread(j).cache_rate,
                1e-4);
  }
  std::remove(path.c_str());
}

TEST(WorkloadIo, HeaderRequired) {
  std::stringstream ss("web,0,1.0,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, EmptyInputRejected) {
  std::stringstream ss("");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, HeaderOnlyRejected) {
  std::stringstream ss("application,thread,cache_rate,memory_rate\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, WindowsLineEndingsAccepted) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\r\n"
      "web,0,1.5,0.2\r\n");
  const Workload wl = read_workload_csv(ss);
  EXPECT_EQ(wl.num_threads(), 1u);
  EXPECT_DOUBLE_EQ(wl.thread(0).cache_rate, 1.5);
}

TEST(WorkloadIo, BlankLinesSkipped) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,1.0,0.1\n"
      "\n"
      "web,1,2.0,0.2\n");
  const Workload wl = read_workload_csv(ss);
  EXPECT_EQ(wl.num_threads(), 2u);
}

TEST(WorkloadIo, NonNumericRateRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,fast,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, TrailingJunkInRateRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,1.0x,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, NegativeRateRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,-1.0,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, ThreadIndexGapRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,1.0,0.1\n"
      "web,2,1.0,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, NonContiguousApplicationRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,1.0,0.1\n"
      "db,0,2.0,0.2\n"
      "web,1,1.0,0.1\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, WrongColumnCountRejected) {
  std::stringstream ss(
      "application,thread,cache_rate,memory_rate\n"
      "web,0,1.0\n");
  EXPECT_THROW(read_workload_csv(ss), Error);
}

TEST(WorkloadIo, MissingFileThrows) {
  EXPECT_THROW(load_workload_csv("/nonexistent/path.csv"), Error);
  EXPECT_THROW(save_workload_csv(sample_workload(), "/nonexistent/x.csv"),
               Error);
}

}  // namespace
}  // namespace nocmap
