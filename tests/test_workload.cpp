#include "workload/workload.h"

#include <gtest/gtest.h>

namespace nocmap {
namespace {

Workload make_two_app_workload() {
  Application a;
  a.name = "a";
  a.threads = {{1.0, 0.1}, {2.0, 0.2}};
  Application b;
  b.name = "b";
  b.threads = {{3.0, 0.3}, {4.0, 0.4}, {5.0, 0.5}};
  return Workload({a, b});
}

TEST(ThreadProfile, TotalRate) {
  const ThreadProfile t{2.0, 0.5};
  EXPECT_DOUBLE_EQ(t.total_rate(), 2.5);
}

TEST(Application, RateSums) {
  Application a;
  a.threads = {{1.0, 0.25}, {2.0, 0.75}};
  EXPECT_DOUBLE_EQ(a.total_cache_rate(), 3.0);
  EXPECT_DOUBLE_EQ(a.total_memory_rate(), 1.0);
  EXPECT_DOUBLE_EQ(a.total_rate(), 4.0);
}

TEST(Workload, FlatteningAndBoundaries) {
  const Workload wl = make_two_app_workload();
  EXPECT_EQ(wl.num_applications(), 2u);
  EXPECT_EQ(wl.num_threads(), 5u);
  EXPECT_EQ(wl.first_thread(0), 0u);
  EXPECT_EQ(wl.last_thread(0), 2u);
  EXPECT_EQ(wl.first_thread(1), 2u);
  EXPECT_EQ(wl.last_thread(1), 5u);
  EXPECT_DOUBLE_EQ(wl.thread(3).cache_rate, 4.0);
}

TEST(Workload, OwnershipLookup) {
  const Workload wl = make_two_app_workload();
  EXPECT_EQ(wl.application_of(0), 0u);
  EXPECT_EQ(wl.application_of(1), 0u);
  EXPECT_EQ(wl.application_of(2), 1u);
  EXPECT_EQ(wl.application_of(4), 1u);
  EXPECT_THROW(wl.application_of(5), Error);
}

TEST(Workload, ValidationRejectsBadInput) {
  EXPECT_THROW(Workload({}), Error);
  Application empty;
  empty.name = "empty";
  EXPECT_THROW(Workload({empty}), Error);
  Application negative;
  negative.threads = {{-1.0, 0.0}};
  EXPECT_THROW(Workload({negative}), Error);
}

TEST(Workload, PaddingAddsIdleApplication) {
  const Workload wl = make_two_app_workload();
  const Workload padded = wl.padded_to(8);
  EXPECT_EQ(padded.num_applications(), 3u);
  EXPECT_EQ(padded.num_threads(), 8u);
  EXPECT_EQ(padded.application(2).name, "idle");
  for (std::size_t j = 5; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(padded.thread(j).total_rate(), 0.0);
  }
}

TEST(Workload, PaddingNoOpWhenExact) {
  const Workload wl = make_two_app_workload();
  const Workload same = wl.padded_to(5);
  EXPECT_EQ(same.num_applications(), 2u);
  EXPECT_THROW(wl.padded_to(3), Error);
}

TEST(Workload, SortByTotalRate) {
  Application heavy;
  heavy.name = "heavy";
  heavy.threads = {{100.0, 1.0}};
  Application light;
  light.name = "light";
  light.threads = {{1.0, 0.1}};
  const Workload wl({heavy, light});
  const Workload sorted = wl.sorted_by_total_rate();
  EXPECT_EQ(sorted.application(0).name, "light");
  EXPECT_EQ(sorted.application(1).name, "heavy");
}

}  // namespace
}  // namespace nocmap
