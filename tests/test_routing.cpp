// Routing-algorithm tests: XY (the paper's configuration), YX, and O1TURN
// with VC partitioning.
#include <gtest/gtest.h>

#include "netsim/network.h"

namespace nocmap {
namespace {

NetworkConfig config_for(RoutingAlgo algo) {
  NetworkConfig c;
  c.routing = algo;
  c.vcs_per_port = 4;  // even split for O1TURN
  return c;
}

PacketInfo make_packet(PacketId id, TileId src, TileId dst,
                       std::uint32_t flits = 1) {
  PacketInfo p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.flits = flits;
  return p;
}

std::vector<Ejection> run_until_drained(Network& net, Cycle limit = 100000) {
  std::vector<Ejection> all;
  for (Cycle c = 0; c < limit && net.packets_in_flight() > 0; ++c) {
    net.step();
    for (auto& e : net.take_ejections()) all.push_back(e);
  }
  return all;
}

TEST(RoutingNames, AllNamed) {
  EXPECT_STREQ(routing_name(RoutingAlgo::kXY), "XY");
  EXPECT_STREQ(routing_name(RoutingAlgo::kYX), "YX");
  EXPECT_STREQ(routing_name(RoutingAlgo::kO1Turn), "O1TURN");
}

TEST(VcRange, PartitionedOnlyForO1Turn) {
  NetworkConfig c = config_for(RoutingAlgo::kXY);
  std::uint32_t lo = 9, hi = 9;
  c.vc_range(true, lo, hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 4u);

  c = config_for(RoutingAlgo::kO1Turn);
  c.vc_range(false, lo, hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);
  c.vc_range(true, lo, hi);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 4u);
}

class RoutingDelivery : public ::testing::TestWithParam<RoutingAlgo> {};

TEST_P(RoutingDelivery, AllToAllDrainsAndConserves) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, config_for(GetParam()));
  PacketId id = 1;
  std::uint64_t flits = 0;
  for (TileId src = 0; src < 16; ++src) {
    for (TileId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      const std::uint32_t f = (src + dst) % 2 ? 1 : 5;
      net.inject_packet(make_packet(id++, src, dst, f));
      flits += f;
    }
  }
  const auto ejections = run_until_drained(net);
  EXPECT_EQ(ejections.size(), id - 1);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.flits_ejected(), flits);
}

TEST_P(RoutingDelivery, HotspotDrains) {
  const Mesh mesh = Mesh::square(5);
  Network net(mesh, config_for(GetParam()));
  const TileId hot = mesh.tile_at(2, 2);
  PacketId id = 1;
  for (TileId src = 0; src < 25; ++src) {
    if (src == hot) continue;
    net.inject_packet(make_packet(id++, src, hot, 5));
  }
  EXPECT_EQ(run_until_drained(net, 200000).size(), 24u);
}

INSTANTIATE_TEST_SUITE_P(Algos, RoutingDelivery,
                         ::testing::Values(RoutingAlgo::kXY,
                                           RoutingAlgo::kYX,
                                           RoutingAlgo::kO1Turn));

TEST(Routing, AllAlgorithmsAreMinimal) {
  // Same unloaded single-packet latency under every algorithm (all three
  // are minimal-path).
  const Mesh mesh = Mesh::square(6);
  std::vector<Cycle> lats;
  for (auto algo : {RoutingAlgo::kXY, RoutingAlgo::kYX,
                    RoutingAlgo::kO1Turn}) {
    Network net(mesh, config_for(algo));
    net.inject_packet(
        make_packet(1, mesh.tile_at(0, 0), mesh.tile_at(3, 2)));
    const auto e = run_until_drained(net);
    ASSERT_EQ(e.size(), 1u);
    lats.push_back(e[0].latency());
  }
  EXPECT_EQ(lats[0], lats[1]);
  EXPECT_EQ(lats[0], lats[2]);
}

TEST(Routing, XyUsesOnlyXFirstIntermediate) {
  // (0,0) -> (1,1): XY passes through (0,1); YX through (1,0).
  const Mesh mesh = Mesh::square(3);
  {
    Network net(mesh, config_for(RoutingAlgo::kXY));
    for (PacketId id = 1; id <= 20; ++id) {
      net.inject_packet(make_packet(id, mesh.tile_at(0, 0),
                                    mesh.tile_at(1, 1)));
    }
    run_until_drained(net);
    EXPECT_GT(net.router_activity(mesh.tile_at(0, 1)).buffer_writes, 0u);
    EXPECT_EQ(net.router_activity(mesh.tile_at(1, 0)).buffer_writes, 0u);
  }
  {
    Network net(mesh, config_for(RoutingAlgo::kYX));
    for (PacketId id = 1; id <= 20; ++id) {
      net.inject_packet(make_packet(id, mesh.tile_at(0, 0),
                                    mesh.tile_at(1, 1)));
    }
    run_until_drained(net);
    EXPECT_EQ(net.router_activity(mesh.tile_at(0, 1)).buffer_writes, 0u);
    EXPECT_GT(net.router_activity(mesh.tile_at(1, 0)).buffer_writes, 0u);
  }
}

TEST(Routing, O1TurnSplitsAcrossBothIntermediates) {
  const Mesh mesh = Mesh::square(3);
  Network net(mesh, config_for(RoutingAlgo::kO1Turn));
  for (PacketId id = 1; id <= 64; ++id) {
    net.inject_packet(
        make_packet(id, mesh.tile_at(0, 0), mesh.tile_at(1, 1)));
  }
  run_until_drained(net);
  EXPECT_GT(net.router_activity(mesh.tile_at(0, 1)).buffer_writes, 0u);
  EXPECT_GT(net.router_activity(mesh.tile_at(1, 0)).buffer_writes, 0u);
}

TEST(Routing, O1TurnNeedsTwoVcs) {
  NetworkConfig c = config_for(RoutingAlgo::kO1Turn);
  c.vcs_per_port = 1;
  EXPECT_THROW(Network(Mesh::square(3), c), Error);
}

TEST(Routing, DeterministicAcrossRuns) {
  auto run_once = [&] {
    const Mesh mesh = Mesh::square(4);
    Network net(mesh, config_for(RoutingAlgo::kO1Turn));
    for (PacketId id = 1; id <= 30; ++id) {
      net.inject_packet(
          make_packet(id, static_cast<TileId>(id % 16),
                      static_cast<TileId>((id * 7 + 3) % 16), 2));
    }
    std::vector<Cycle> lats;
    for (const auto& e : run_until_drained(net)) lats.push_back(e.latency());
    return lats;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nocmap
