#include "core/metrics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace nocmap {
namespace {

LatencyParams simple_params() {
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

ObmProblem make_problem_4x4() {
  const Mesh mesh = Mesh::square(4);
  Application a;
  a.name = "a";
  a.threads.assign(8, ThreadProfile{1.0, 0.5});
  Application b;
  b.name = "b";
  b.threads.assign(8, ThreadProfile{2.0, 0.0});
  return ObmProblem(TileLatencyModel(mesh, simple_params()),
                    Workload({a, b}));
}

TEST(Mapping, PermutationValidation) {
  Mapping m;
  m.thread_to_tile = {0, 1, 2, 3};
  EXPECT_TRUE(m.is_valid_permutation(4));
  EXPECT_FALSE(m.is_valid_permutation(5));
  m.thread_to_tile = {0, 1, 1, 3};
  EXPECT_FALSE(m.is_valid_permutation(4));
  m.thread_to_tile = {0, 1, 2, 9};
  EXPECT_FALSE(m.is_valid_permutation(4));
}

TEST(Mapping, InverseRoundTrip) {
  Mapping m;
  m.thread_to_tile = {2, 0, 3, 1};
  const auto inv = m.tile_to_thread();
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(inv[m.thread_to_tile[j]], j);
  }
}

TEST(Mapping, InverseRequiresValidPermutation) {
  Mapping m;
  m.thread_to_tile = {0, 0};
  EXPECT_THROW(m.tile_to_thread(), Error);
}

TEST(ObmProblem, SizeMismatchRejected) {
  const Mesh mesh = Mesh::square(4);
  Application a;
  a.threads.assign(3, ThreadProfile{1.0, 0.0});
  EXPECT_THROW(ObmProblem(TileLatencyModel(mesh, simple_params()),
                          Workload({a})),
               Error);
}

TEST(ObmProblem, IdentityMapping) {
  const ObmProblem p = make_problem_4x4();
  const Mapping m = p.identity_mapping();
  EXPECT_TRUE(m.is_valid_permutation(16));
  for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(m.tile_of(j), j);
}

// With equal rates inside an application, its APL is the plain average of
// TC over its tiles, weighted by the cache/memory split.
TEST(Metrics, HandComputedApl) {
  const Mesh mesh = Mesh::square(2);
  Application a;
  a.threads = {{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
  const TileLatencyModel model(mesh, simple_params());
  const ObmProblem problem(model, Workload({a}));
  const Mapping m = problem.identity_mapping();
  const LatencyReport r = evaluate(problem, m);
  double expected = 0.0;
  for (TileId t = 0; t < 4; ++t) expected += model.tc(t);
  expected /= 4.0;
  EXPECT_NEAR(r.apl[0], expected, 1e-12);
  EXPECT_NEAR(r.g_apl, expected, 1e-12);
  EXPECT_NEAR(r.max_apl, expected, 1e-12);
  EXPECT_NEAR(r.dev_apl, 0.0, 1e-12);
}

TEST(Metrics, WeightingByRates) {
  // One hot thread dominates its application's APL.
  const Mesh mesh = Mesh::square(2);
  const TileLatencyModel model(mesh, simple_params());
  Application a;
  a.threads = {{1000.0, 0.0}, {0.001, 0.0}, {0.001, 0.0}, {0.001, 0.0}};
  const ObmProblem problem(model, Workload({a}));
  const Mapping m = problem.identity_mapping();
  const LatencyReport r = evaluate(problem, m);
  EXPECT_NEAR(r.apl[0], model.tc(0), 0.01);
}

TEST(Metrics, MemoryTrafficUsesTm) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, simple_params());
  Application a;
  a.threads.assign(16, ThreadProfile{0.0, 1.0});  // memory-only
  const ObmProblem problem(model, Workload({a}));
  const Mapping m = problem.identity_mapping();
  const LatencyReport r = evaluate(problem, m);
  double expected = 0.0;
  for (TileId t = 0; t < 16; ++t) expected += model.tm(t);
  expected /= 16.0;
  EXPECT_NEAR(r.apl[0], expected, 1e-12);
}

TEST(Metrics, ApplicationAplMatchesEvaluate) {
  const ObmProblem p = make_problem_4x4();
  Rng rng(5);
  Mapping m;
  const auto perm = random_permutation(16, rng);
  for (std::size_t v : perm) {
    m.thread_to_tile.push_back(static_cast<TileId>(v));
  }
  const LatencyReport r = evaluate(p, m);
  for (std::size_t i = 0; i < p.num_applications(); ++i) {
    EXPECT_NEAR(application_apl(p, m, i), r.apl[i], 1e-12);
  }
}

TEST(Metrics, GaplIsVolumeWeightedAverageOfApls) {
  const ObmProblem p = make_problem_4x4();
  const Mapping m = p.identity_mapping();
  const LatencyReport r = evaluate(p, m);
  const Workload& wl = p.workload();
  double weighted = 0.0, volume = 0.0;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double v = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      v += wl.thread(j).total_rate();
    }
    weighted += r.apl[i] * v;
    volume += v;
  }
  EXPECT_NEAR(r.g_apl, weighted / volume, 1e-12);
}

TEST(Metrics, ZeroTrafficApplicationExcluded) {
  const Mesh mesh = Mesh::square(2);
  const TileLatencyModel model(mesh, simple_params());
  Application live;
  live.threads = {{1.0, 0.0}, {1.0, 0.0}};
  Application idle;
  idle.threads = {{0.0, 0.0}, {0.0, 0.0}};
  const ObmProblem problem(model, Workload({live, idle}));
  const Mapping m = problem.identity_mapping();
  const LatencyReport r = evaluate(problem, m);
  EXPECT_DOUBLE_EQ(r.apl[1], 0.0);
  EXPECT_GT(r.max_apl, 0.0);        // idle app's 0 must not be the max...
  EXPECT_DOUBLE_EQ(r.dev_apl, 0.0);  // ...nor drag the deviation
}

TEST(Metrics, InvalidMappingRejected) {
  const ObmProblem p = make_problem_4x4();
  Mapping bad;
  bad.thread_to_tile.assign(16, 0);
  EXPECT_THROW(evaluate(p, bad), Error);
}

TEST(Metrics, MinToMaxRatioReported) {
  const ObmProblem p = make_problem_4x4();
  const LatencyReport r = evaluate(p, p.identity_mapping());
  EXPECT_GT(r.min_to_max, 0.0);
  EXPECT_LE(r.min_to_max, 1.0);
}

// Permuting threads *within* one application never changes another
// application's APL (the independence property underlying SAM).
TEST(Metrics, CrossApplicationIndependence) {
  const ObmProblem p = make_problem_4x4();
  Mapping m = p.identity_mapping();
  const LatencyReport before = evaluate(p, m);
  std::swap(m.thread_to_tile[0], m.thread_to_tile[3]);  // both in app 0
  const LatencyReport after = evaluate(p, m);
  EXPECT_NEAR(before.apl[1], after.apl[1], 1e-12);
}

}  // namespace
}  // namespace nocmap
