#include "topology/mesh.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nocmap {
namespace {

TEST(Mesh, SquareBasics) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 8u);
  EXPECT_EQ(m.num_tiles(), 64u);
}

TEST(Mesh, TooSmallThrows) { EXPECT_THROW(Mesh::square(1), Error); }

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    EXPECT_EQ(m.tile_at(m.coord_of(t)), t);
  }
}

// Paper eq. 1 worked example: "the 29-th tile in Figure 1 (where n = 8) is
// located at the fourth row (from the top), fifth column (from the left)".
TEST(Mesh, PaperNumberingExample) {
  const Mesh m = Mesh::square(8);
  const TileId t = m.from_paper_number(29);
  const TileCoord c = m.coord_of(t);
  EXPECT_EQ(c.row, 3u);  // fourth row, 0-based
  EXPECT_EQ(c.col, 4u);  // fifth column, 0-based
  EXPECT_EQ(m.paper_number(t), 29u);
}

TEST(Mesh, PaperNumberRangeChecked) {
  const Mesh m = Mesh::square(4);
  EXPECT_THROW(m.from_paper_number(0), Error);
  EXPECT_THROW(m.from_paper_number(17), Error);
}

TEST(Mesh, HopsIsManhattanDistance) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(0, 0)), 0u);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(7, 7)), 14u);
  EXPECT_EQ(m.hops(m.tile_at(3, 4), m.tile_at(5, 1)), 5u);
}

TEST(Mesh, HopsIsSymmetric) {
  const Mesh m = Mesh::square(5);
  for (TileId a = 0; a < m.num_tiles(); ++a) {
    for (TileId b = 0; b < m.num_tiles(); ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

// Paper Section II.C anchors: on an 8x8 mesh, HC_1 = 7 for corner tile 1 and
// HC_28 = 4 for central tile 28 (paper numbering).
TEST(Mesh, AvgHopsPaperAnchors) {
  const Mesh m = Mesh::square(8);
  EXPECT_DOUBLE_EQ(m.avg_hops_to_all(m.from_paper_number(1)), 7.0);
  EXPECT_DOUBLE_EQ(m.avg_hops_to_all(m.from_paper_number(28)), 4.0);
}

TEST(Mesh, AvgHopsMatchesDirectSum) {
  const Mesh m = Mesh::square(6);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    double direct = 0.0;
    for (TileId u = 0; u < m.num_tiles(); ++u) {
      direct += static_cast<double>(m.hops(t, u));
    }
    direct /= static_cast<double>(m.num_tiles());
    EXPECT_DOUBLE_EQ(m.avg_hops_to_all(t), direct);
  }
}

TEST(Mesh, AvgHopsCenterSmallerThanCorner) {
  const Mesh m = Mesh::square(8);
  const double corner = m.avg_hops_to_all(m.tile_at(0, 0));
  const double center = m.avg_hops_to_all(m.tile_at(3, 3));
  EXPECT_LT(center, corner);
}

TEST(Mesh, CornerMcPlacement) {
  const Mesh m = Mesh::square(8);
  ASSERT_EQ(m.mc_tiles().size(), 4u);
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 7)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 7)));
  EXPECT_FALSE(m.is_mc(m.tile_at(3, 3)));
}

// Paper eq. 4: HM_k = min(i-1, n-i) + min(j-1, n-j) with 1-based i, j.
TEST(Mesh, NearestMcMatchesQuadrantFormula) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    const TileCoord c = m.coord_of(t);
    const std::uint32_t i = c.row + 1;
    const std::uint32_t j = c.col + 1;
    const std::uint32_t expected =
        std::min(i - 1, 8 - i) + std::min(j - 1, 8 - j);
    EXPECT_EQ(m.hops_to_nearest_mc(t), expected) << "tile " << t;
  }
}

TEST(Mesh, NearestMcIsConsistentWithDistance) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    EXPECT_EQ(m.hops(t, m.nearest_mc(t)), m.hops_to_nearest_mc(t));
    EXPECT_TRUE(m.is_mc(m.nearest_mc(t)));
  }
}

TEST(Mesh, McTileHasZeroMcDistance) {
  const Mesh m = Mesh::square(8);
  for (TileId mc : m.mc_tiles()) {
    EXPECT_EQ(m.hops_to_nearest_mc(mc), 0u);
    EXPECT_EQ(m.nearest_mc(mc), mc);
  }
}

TEST(Mesh, EdgeMiddlePlacement) {
  const Mesh m = Mesh::square_with_placement(8, McPlacement::kEdgeMiddles);
  EXPECT_EQ(m.mc_tiles().size(), 4u);
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 4)));
  EXPECT_TRUE(m.is_mc(m.tile_at(4, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(4, 7)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 4)));
}

TEST(Mesh, DiamondPlacementCenter) {
  const Mesh even = Mesh::square_with_placement(8, McPlacement::kDiamond);
  EXPECT_EQ(even.mc_tiles().size(), 4u);
  EXPECT_TRUE(even.is_mc(even.tile_at(3, 3)));
  EXPECT_TRUE(even.is_mc(even.tile_at(4, 4)));

  const Mesh odd = Mesh::square_with_placement(5, McPlacement::kDiamond);
  EXPECT_EQ(odd.mc_tiles().size(), 1u);  // degenerate center
  EXPECT_TRUE(odd.is_mc(odd.tile_at(2, 2)));
}

TEST(Torus, WraparoundShortensHops) {
  const Mesh torus = Mesh::square_torus(8);
  EXPECT_TRUE(torus.is_torus());
  // Opposite corners are 2 hops apart on a torus (1 wrap per dimension).
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(7, 7)), 2u);
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(0, 4)), 4u);
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(0, 5)), 3u);
}

TEST(Torus, HopsNeverExceedMesh) {
  const Mesh mesh = Mesh::square(6);
  const Mesh torus = Mesh::square_torus(6);
  for (TileId a = 0; a < 36; ++a) {
    for (TileId b = 0; b < 36; ++b) {
      EXPECT_LE(torus.hops(a, b), mesh.hops(a, b));
    }
  }
}

TEST(Torus, UniformAverageHops) {
  // Vertex-transitive: every tile has the same average distance, so the
  // cache-latency imbalance the paper balances does not exist on a torus.
  const Mesh torus = Mesh::square_torus(8);
  const double reference = torus.avg_hops_to_all(0);
  for (TileId t = 1; t < torus.num_tiles(); ++t) {
    EXPECT_DOUBLE_EQ(torus.avg_hops_to_all(t), reference);
  }
  // 8x8 torus: per-dimension average min(d, 8-d) over d=0..7 is
  // (0+1+2+3+4+3+2+1)/8 = 2; two dimensions -> 4 hops.
  EXPECT_DOUBLE_EQ(reference, 4.0);
}

TEST(Torus, AvgHopsMatchesDirectSum) {
  const Mesh torus = Mesh::square_torus(5);
  for (TileId t = 0; t < torus.num_tiles(); ++t) {
    double direct = 0.0;
    for (TileId u = 0; u < torus.num_tiles(); ++u) {
      direct += static_cast<double>(torus.hops(t, u));
    }
    direct /= static_cast<double>(torus.num_tiles());
    EXPECT_DOUBLE_EQ(torus.avg_hops_to_all(t), direct);
  }
}

TEST(Torus, MeshIsNotTorus) { EXPECT_FALSE(Mesh::square(4).is_torus()); }

TEST(Mesh, RectangularMesh) {
  const Mesh m(2, 3, {0});
  EXPECT_EQ(m.num_tiles(), 6u);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(1, 2)), 3u);
}

TEST(Mesh, InvalidMcRejected) {
  EXPECT_THROW(Mesh(2, 2, {}), Error);
  EXPECT_THROW(Mesh(2, 2, {4}), Error);
}

TEST(Mesh, OutOfRangeAccessors) {
  const Mesh m = Mesh::square(2);
  EXPECT_THROW(m.coord_of(4), Error);
  EXPECT_THROW(m.tile_at(2, 0), Error);
  EXPECT_THROW(m.is_mc(4), Error);
}

}  // namespace
}  // namespace nocmap
