#include "topology/mesh.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nocmap {
namespace {

TEST(Mesh, SquareBasics) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 8u);
  EXPECT_EQ(m.num_tiles(), 64u);
}

TEST(Mesh, TooSmallThrows) { EXPECT_THROW(Mesh::square(1), Error); }

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    EXPECT_EQ(m.tile_at(m.coord_of(t)), t);
  }
}

// Paper eq. 1 worked example: "the 29-th tile in Figure 1 (where n = 8) is
// located at the fourth row (from the top), fifth column (from the left)".
TEST(Mesh, PaperNumberingExample) {
  const Mesh m = Mesh::square(8);
  const TileId t = m.from_paper_number(29);
  const TileCoord c = m.coord_of(t);
  EXPECT_EQ(c.row, 3u);  // fourth row, 0-based
  EXPECT_EQ(c.col, 4u);  // fifth column, 0-based
  EXPECT_EQ(m.paper_number(t), 29u);
}

TEST(Mesh, PaperNumberRangeChecked) {
  const Mesh m = Mesh::square(4);
  EXPECT_THROW(m.from_paper_number(0), Error);
  EXPECT_THROW(m.from_paper_number(17), Error);
}

TEST(Mesh, HopsIsManhattanDistance) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(0, 0)), 0u);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(7, 7)), 14u);
  EXPECT_EQ(m.hops(m.tile_at(3, 4), m.tile_at(5, 1)), 5u);
}

TEST(Mesh, HopsIsSymmetric) {
  const Mesh m = Mesh::square(5);
  for (TileId a = 0; a < m.num_tiles(); ++a) {
    for (TileId b = 0; b < m.num_tiles(); ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

// Paper Section II.C anchors: on an 8x8 mesh, HC_1 = 7 for corner tile 1 and
// HC_28 = 4 for central tile 28 (paper numbering).
TEST(Mesh, AvgHopsPaperAnchors) {
  const Mesh m = Mesh::square(8);
  EXPECT_DOUBLE_EQ(m.avg_hops_to_all(m.from_paper_number(1)), 7.0);
  EXPECT_DOUBLE_EQ(m.avg_hops_to_all(m.from_paper_number(28)), 4.0);
}

TEST(Mesh, AvgHopsMatchesDirectSum) {
  const Mesh m = Mesh::square(6);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    double direct = 0.0;
    for (TileId u = 0; u < m.num_tiles(); ++u) {
      direct += static_cast<double>(m.hops(t, u));
    }
    direct /= static_cast<double>(m.num_tiles());
    EXPECT_DOUBLE_EQ(m.avg_hops_to_all(t), direct);
  }
}

TEST(Mesh, AvgHopsCenterSmallerThanCorner) {
  const Mesh m = Mesh::square(8);
  const double corner = m.avg_hops_to_all(m.tile_at(0, 0));
  const double center = m.avg_hops_to_all(m.tile_at(3, 3));
  EXPECT_LT(center, corner);
}

TEST(Mesh, CornerMcPlacement) {
  const Mesh m = Mesh::square(8);
  ASSERT_EQ(m.mc_tiles().size(), 4u);
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 7)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 7)));
  EXPECT_FALSE(m.is_mc(m.tile_at(3, 3)));
}

// Paper eq. 4: HM_k = min(i-1, n-i) + min(j-1, n-j) with 1-based i, j.
TEST(Mesh, NearestMcMatchesQuadrantFormula) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    const TileCoord c = m.coord_of(t);
    const std::uint32_t i = c.row + 1;
    const std::uint32_t j = c.col + 1;
    const std::uint32_t expected =
        std::min(i - 1, 8 - i) + std::min(j - 1, 8 - j);
    EXPECT_EQ(m.hops_to_nearest_mc(t), expected) << "tile " << t;
  }
}

TEST(Mesh, NearestMcIsConsistentWithDistance) {
  const Mesh m = Mesh::square(8);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    EXPECT_EQ(m.hops(t, m.nearest_mc(t)), m.hops_to_nearest_mc(t));
    EXPECT_TRUE(m.is_mc(m.nearest_mc(t)));
  }
}

TEST(Mesh, McTileHasZeroMcDistance) {
  const Mesh m = Mesh::square(8);
  for (TileId mc : m.mc_tiles()) {
    EXPECT_EQ(m.hops_to_nearest_mc(mc), 0u);
    EXPECT_EQ(m.nearest_mc(mc), mc);
  }
}

TEST(Mesh, EdgeMiddlePlacement) {
  const Mesh m = Mesh::square_with_placement(8, McPlacement::kEdgeMiddles);
  EXPECT_EQ(m.mc_tiles().size(), 4u);
  EXPECT_TRUE(m.is_mc(m.tile_at(0, 4)));
  EXPECT_TRUE(m.is_mc(m.tile_at(4, 0)));
  EXPECT_TRUE(m.is_mc(m.tile_at(4, 7)));
  EXPECT_TRUE(m.is_mc(m.tile_at(7, 4)));
}

TEST(Mesh, DiamondPlacementCenter) {
  const Mesh even = Mesh::square_with_placement(8, McPlacement::kDiamond);
  EXPECT_EQ(even.mc_tiles().size(), 4u);
  EXPECT_TRUE(even.is_mc(even.tile_at(3, 3)));
  EXPECT_TRUE(even.is_mc(even.tile_at(4, 4)));

  const Mesh odd = Mesh::square_with_placement(5, McPlacement::kDiamond);
  EXPECT_EQ(odd.mc_tiles().size(), 1u);  // degenerate center
  EXPECT_TRUE(odd.is_mc(odd.tile_at(2, 2)));
}

TEST(Torus, WraparoundShortensHops) {
  const Mesh torus = Mesh::square_torus(8);
  EXPECT_TRUE(torus.is_torus());
  // Opposite corners are 2 hops apart on a torus (1 wrap per dimension).
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(7, 7)), 2u);
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(0, 4)), 4u);
  EXPECT_EQ(torus.hops(torus.tile_at(0, 0), torus.tile_at(0, 5)), 3u);
}

TEST(Torus, HopsNeverExceedMesh) {
  const Mesh mesh = Mesh::square(6);
  const Mesh torus = Mesh::square_torus(6);
  for (TileId a = 0; a < 36; ++a) {
    for (TileId b = 0; b < 36; ++b) {
      EXPECT_LE(torus.hops(a, b), mesh.hops(a, b));
    }
  }
}

TEST(Torus, UniformAverageHops) {
  // Vertex-transitive: every tile has the same average distance, so the
  // cache-latency imbalance the paper balances does not exist on a torus.
  const Mesh torus = Mesh::square_torus(8);
  const double reference = torus.avg_hops_to_all(0);
  for (TileId t = 1; t < torus.num_tiles(); ++t) {
    EXPECT_DOUBLE_EQ(torus.avg_hops_to_all(t), reference);
  }
  // 8x8 torus: per-dimension average min(d, 8-d) over d=0..7 is
  // (0+1+2+3+4+3+2+1)/8 = 2; two dimensions -> 4 hops.
  EXPECT_DOUBLE_EQ(reference, 4.0);
}

TEST(Torus, AvgHopsMatchesDirectSum) {
  const Mesh torus = Mesh::square_torus(5);
  for (TileId t = 0; t < torus.num_tiles(); ++t) {
    double direct = 0.0;
    for (TileId u = 0; u < torus.num_tiles(); ++u) {
      direct += static_cast<double>(torus.hops(t, u));
    }
    direct /= static_cast<double>(torus.num_tiles());
    EXPECT_DOUBLE_EQ(torus.avg_hops_to_all(t), direct);
  }
}

TEST(Torus, MeshIsNotTorus) { EXPECT_FALSE(Mesh::square(4).is_torus()); }

TEST(Mesh, RectangularMesh) {
  const Mesh m(2, 3, {0});
  EXPECT_EQ(m.num_tiles(), 6u);
  EXPECT_EQ(m.hops(m.tile_at(0, 0), m.tile_at(1, 2)), 3u);
}

TEST(Mesh, InvalidMcRejected) {
  EXPECT_THROW(Mesh(2, 2, {}), Error);
  EXPECT_THROW(Mesh(2, 2, {4}), Error);
}

TEST(Mesh, OutOfRangeAccessors) {
  const Mesh m = Mesh::square(2);
  EXPECT_THROW(m.coord_of(4), Error);
  EXPECT_THROW(m.tile_at(2, 0), Error);
  EXPECT_THROW(m.is_mc(4), Error);
}

// Regression: the ctor used to accept duplicate MC tile ids silently, which
// double-counted that controller in every mc_tiles() loop (interleaved TM,
// multicast trees, conservation accounting).
TEST(Mesh, DuplicateMcRejected) {
  EXPECT_THROW(Mesh(2, 2, {0, 0}), Error);
  EXPECT_THROW(Mesh(3, 3, {2, 5, 2}), Error);
  EXPECT_THROW(Mesh(2, 2, 2, {1, 1}), Error);
}

// Nearest-MC ties break toward the lowest MC tile id — on non-square
// meshes and arbitrary MC sets, not just the corner layout.
TEST(Mesh, NearestMcTieBreaksToLowestId) {
  // 4x4, MCs in row 0 at columns 0 and 2: column 1 is equidistant.
  const Mesh m(4, 4, {0, 2});
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(m.nearest_mc(m.tile_at(r, 1)), 0u) << "row " << r;
  }
  // 3x5 rectangular, MCs at (0,4)=4 and (2,0)=10: tile (1,2)=7 is 3 hops
  // from both.
  const Mesh rect(3, 5, {4, 10});
  EXPECT_EQ(rect.hops(7, 4), rect.hops(7, 10));
  EXPECT_EQ(rect.nearest_mc(7), 4u);
}

TEST(Mesh, NearestMcBruteForceOnGenericSet) {
  const Mesh m(5, 7, {3, 11, 20, 33});
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    TileId best = m.mc_tiles()[0];
    for (TileId mc : m.mc_tiles()) {
      if (m.weighted_hops(t, mc) < m.weighted_hops(t, best) ||
          (m.weighted_hops(t, mc) == m.weighted_hops(t, best) && mc < best)) {
        best = mc;
      }
    }
    EXPECT_EQ(m.nearest_mc(t), best) << "tile " << t;
    EXPECT_EQ(m.hops_to_nearest_mc(t), m.hops(t, best)) << "tile " << t;
  }
}

TEST(Mesh3D, CoordinateRoundTrip) {
  const Mesh m(3, 4, 5, {0});
  EXPECT_TRUE(m.is_3d());
  EXPECT_EQ(m.num_tiles(), 60u);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    const TileCoord c = m.coord_of(t);
    EXPECT_EQ(m.tile_at(c), t);
    EXPECT_EQ(m.tile_at(c.layer, c.row, c.col), t);
    EXPECT_EQ(t, c.layer * 20u + c.row * 5u + c.col);  // layer-major layout
  }
}

TEST(Mesh3D, HopsIsManhattanAcrossLayers) {
  const Mesh m(3, 4, 4, {0});
  EXPECT_EQ(m.hops(m.tile_at(0u, 0u, 0u), m.tile_at(2u, 3u, 1u)), 6u);
  for (TileId a = 0; a < m.num_tiles(); ++a) {
    for (TileId b = 0; b < m.num_tiles(); ++b) {
      const TileCoord ca = m.coord_of(a), cb = m.coord_of(b);
      const std::uint32_t manhattan =
          (ca.row > cb.row ? ca.row - cb.row : cb.row - ca.row) +
          (ca.col > cb.col ? ca.col - cb.col : cb.col - ca.col) +
          (ca.layer > cb.layer ? ca.layer - cb.layer : cb.layer - ca.layer);
      EXPECT_EQ(m.hops(a, b), manhattan);
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

TEST(Mesh3D, Layer0MatchesPlanarIds) {
  // Layer 0 of a stack uses the same ids and distances as the 2D mesh.
  const Mesh flat = Mesh::square(4);
  const Mesh stack(2, 4, 4, {0, 3, 12, 15});
  for (TileId a = 0; a < flat.num_tiles(); ++a) {
    EXPECT_EQ(stack.coord_of(a).layer, 0u);
    for (TileId b = 0; b < flat.num_tiles(); ++b) {
      EXPECT_EQ(stack.hops(a, b), flat.hops(a, b));
    }
  }
}

TEST(Mesh3D, WeightedHopsUsesTsvCost) {
  const Mesh m(2, 4, 4, {0}, /*tsv_hop_cost=*/0.5);
  EXPECT_DOUBLE_EQ(m.tsv_hop_cost(), 0.5);
  const TileId below = m.tile_at(0u, 1u, 2u);
  const TileId above = m.tile_at(1u, 1u, 2u);
  EXPECT_EQ(m.hops(below, above), 1u);
  EXPECT_DOUBLE_EQ(m.weighted_hops(below, above), 0.5);
  EXPECT_DOUBLE_EQ(m.weighted_hops(0, m.tile_at(1u, 2u, 3u)), 5.5);
  // On a 2D mesh the weighted distance degenerates to the hop count.
  const Mesh flat = Mesh::square(4);
  EXPECT_DOUBLE_EQ(flat.weighted_hops(0, 15), 6.0);
}

TEST(Mesh3D, AvgWeightedHopsMatchesDirectSum) {
  const Mesh m(2, 3, 4, {0}, /*tsv_hop_cost=*/1.5);
  for (TileId t = 0; t < m.num_tiles(); ++t) {
    double direct = 0.0;
    for (TileId u = 0; u < m.num_tiles(); ++u) {
      direct += m.weighted_hops(t, u);
    }
    direct /= static_cast<double>(m.num_tiles());
    EXPECT_DOUBLE_EQ(m.avg_weighted_hops_to_all(t), direct);
  }
}

TEST(Mesh3D, NearestMcUsesWeightedDistance) {
  // MC 0 at layer-0 corner, MC 21 at (layer 1, row 1, col 1). With cheap
  // TSVs the upper layer belongs to the upper MC even where plain hop
  // counts would tie.
  const Mesh m(2, 4, 4, {0, 21}, /*tsv_hop_cost=*/0.25);
  const TileId probe = m.tile_at(1u, 2u, 2u);  // 2 planar hops from MC 21
  EXPECT_EQ(m.nearest_mc(probe), 21u);
  EXPECT_DOUBLE_EQ(m.weighted_hops_to_nearest_mc(probe), 2.0);
  // A layer-0 tile right under MC 21 pays only the TSV to reach it.
  const TileId under = m.tile_at(0u, 1u, 1u);
  EXPECT_EQ(m.nearest_mc(under), 21u);
  EXPECT_DOUBLE_EQ(m.weighted_hops_to_nearest_mc(under), 0.25);
}

TEST(Mesh3D, StackedWithPlacementPutsMcsOnBaseDie) {
  const Mesh m = Mesh::stacked_with_placement(4, 8, McPlacement::kCorners);
  EXPECT_EQ(m.layers(), 4u);
  EXPECT_EQ(m.num_tiles(), 256u);
  ASSERT_EQ(m.mc_tiles().size(), 4u);
  for (TileId mc : m.mc_tiles()) {
    EXPECT_EQ(m.coord_of(mc).layer, 0u);
  }
  EXPECT_THROW(
      Mesh::stacked_with_placement(2, 4, McPlacement::kRandom), Error);
  EXPECT_THROW(
      Mesh::square_with_placement(4, McPlacement::kRandom), Error);
}

TEST(Mesh3D, InvalidStackRejected) {
  EXPECT_THROW(Mesh(0, 4, 4, {0}), Error);            // no layers
  EXPECT_THROW(Mesh(2, 4, 4, {0}, 0.0), Error);       // non-positive TSV cost
  EXPECT_THROW(Mesh(2, 4, 4, {0}, -1.0), Error);      // negative TSV cost
  EXPECT_THROW(Mesh(2, 4, 4, {32}), Error);           // MC id out of range
}

TEST(Mesh, PlacementNameRoundTrip) {
  for (const McPlacement p :
       {McPlacement::kCorners, McPlacement::kEdgeMiddles, McPlacement::kDiamond,
        McPlacement::kRandom}) {
    McPlacement parsed{};
    ASSERT_TRUE(mc_placement_from_name(mc_placement_name(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  McPlacement ignored{};
  EXPECT_FALSE(mc_placement_from_name("nonsense", ignored));
}

}  // namespace
}  // namespace nocmap
