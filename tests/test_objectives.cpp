// Empirical Section-III.A tests: annealing under the rejected objectives
// (dev-APL, min-to-max) produces "balanced but slow" mappings, while the
// max-APL objective keeps overall latency low too.
#include <gtest/gtest.h>

#include "core/annealing_mapper.h"
#include "core/metrics.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem() {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 21));
}

AnnealingParams params_for(AnnealObjective objective, std::uint64_t seed) {
  return AnnealingParams{
      .iterations = 40000, .seed = seed, .objective = objective};
}

TEST(Objectives, Names) {
  EXPECT_STREQ(anneal_objective_name(AnnealObjective::kMaxApl), "max-APL");
  EXPECT_STREQ(anneal_objective_name(AnnealObjective::kDevApl), "dev-APL");
  EXPECT_STREQ(anneal_objective_name(AnnealObjective::kMinToMax),
               "min-to-max");
  EXPECT_EQ(AnnealingMapper(params_for(AnnealObjective::kMaxApl, 1)).name(),
            "SA");
  EXPECT_EQ(AnnealingMapper(params_for(AnnealObjective::kDevApl, 1)).name(),
            "SA(dev-APL)");
}

TEST(Objectives, AllProduceValidMappings) {
  const ObmProblem p = c1_problem();
  for (auto obj : {AnnealObjective::kMaxApl, AnnealObjective::kDevApl,
                   AnnealObjective::kMinToMax}) {
    AnnealingMapper sa(params_for(obj, 3));
    EXPECT_TRUE(sa.map(p).is_valid_permutation(p.num_threads()));
  }
}

TEST(Objectives, DevAplObjectiveAchievesBalance) {
  const ObmProblem p = c1_problem();
  AnnealingMapper sa(params_for(AnnealObjective::kDevApl, 5));
  const LatencyReport r = evaluate(p, sa.map(p));
  EXPECT_LT(r.dev_apl, 0.1);  // it does optimize what it optimizes
}

// The pathology: dev-APL-balanced solutions pay more overall latency than
// max-APL-balanced ones, because nothing pushes them toward *low* latency.
TEST(Objectives, DevAplObjectiveSacrificesGapl) {
  const ObmProblem p = c1_problem();
  double dev_g = 0.0, max_g = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    AnnealingMapper dev_sa(params_for(AnnealObjective::kDevApl, seed));
    AnnealingMapper max_sa(params_for(AnnealObjective::kMaxApl, seed));
    dev_g += evaluate(p, dev_sa.map(p)).g_apl;
    max_g += evaluate(p, max_sa.map(p)).g_apl;
  }
  EXPECT_GT(dev_g, max_g);
}

TEST(Objectives, MinToMaxObjectiveSacrificesGapl) {
  const ObmProblem p = c1_problem();
  double ratio_g = 0.0, max_g = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    AnnealingMapper ratio_sa(params_for(AnnealObjective::kMinToMax, seed));
    AnnealingMapper max_sa(params_for(AnnealObjective::kMaxApl, seed));
    ratio_g += evaluate(p, ratio_sa.map(p)).g_apl;
    max_g += evaluate(p, max_sa.map(p)).g_apl;
  }
  EXPECT_GT(ratio_g, max_g);
}

// max-APL dominates: its solutions are (near-)balanced AND fast; the
// rejected objectives are balanced but slower on max-APL as well.
TEST(Objectives, MaxAplObjectiveHasLowestMaxApl) {
  const ObmProblem p = c1_problem();
  AnnealingMapper max_sa(params_for(AnnealObjective::kMaxApl, 7));
  AnnealingMapper dev_sa(params_for(AnnealObjective::kDevApl, 7));
  const double from_max = evaluate(p, max_sa.map(p)).max_apl;
  const double from_dev = evaluate(p, dev_sa.map(p)).max_apl;
  EXPECT_LT(from_max, from_dev);
}

}  // namespace
}  // namespace nocmap
