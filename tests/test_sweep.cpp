// Campaign sweep engine tests (src/sweep/): spec parsing strictness,
// deterministic expansion, and the resumability contract — a campaign
// killed after N scenarios and resumed, at any worker count, produces a
// byte-identical frontier document (docs/campaigns.md "Determinism").
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/error.h"

namespace nocmap::sweep {
namespace {

namespace fs = std::filesystem;

/// Small but non-trivial campaign: 2 mesh sides x 2 configs x 2 injections
/// x 2 seeds x 2 mappers = 32 scenarios, netsim on so the simulated stage
/// and the power fold are covered too.
CampaignSpec test_spec() {
  CampaignSpec spec;
  spec.name = "test-campaign";
  spec.mesh_side = {4, 8};
  spec.config = {"C1", "C3"};
  spec.num_applications = {2};
  spec.injection_scale = {0.5, 1.0};
  spec.seed = {1, 2};
  spec.mappers = {"Global", "SSS"};
  spec.netsim.enabled = true;
  spec.netsim.warmup_cycles = 100;
  spec.netsim.measure_cycles = 1000;
  spec.netsim.max_drain_cycles = 10000;
  return spec;
}

/// Fresh scratch directory under the test binary's cwd.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("sweep_test_scratch") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// The campaign log with every map_us (the one intentionally
/// non-reproducible field) zeroed, for cross-run comparison.
std::string normalized_log(const fs::path& path) {
  CampaignLog log = read_campaign_log(path.string());
  std::string out = log.header.dump(0) + "\n";
  for (obs::JsonValue& record : log.records) {
    record["map_us"] = 0.0;
    out += record.dump(0) + "\n";
  }
  return out;
}

// ------------------------------------------------------------ spec parsing

TEST(SweepSpec, ParsesAxesAndOptions) {
  const CampaignSpec spec = parse_spec(std::string(R"({
    "schema": "nocmap.sweep_spec/1",
    "name": "demo",
    "axes": {
      "mesh_side": [4, 8],
      "topology": ["mesh", "torus"],
      "config": ["C1"],
      "injection_scale": [0.25],
      "seed": {"base": 10, "count": 3}
    },
    "mappers": ["Global", "SA"],
    "mapper_options": {"sa_iterations": 500},
    "netsim": {"enabled": true, "measure_cycles": 5000}
  })"));
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.mesh_side, (std::vector<std::uint32_t>{4, 8}));
  EXPECT_EQ(spec.torus, (std::vector<bool>{false, true}));
  EXPECT_EQ(spec.seed.base, 10u);
  EXPECT_EQ(spec.seed.count, 3u);
  EXPECT_EQ(spec.mappers, (std::vector<std::string>{"Global", "SA"}));
  EXPECT_EQ(spec.mapper_options.sa_iterations, 500u);
  EXPECT_TRUE(spec.netsim.enabled);
  EXPECT_EQ(spec.netsim.measure_cycles, 5000u);
  // Unset axes keep their defaults.
  EXPECT_EQ(spec.num_applications, (std::vector<std::uint32_t>{4}));
}

TEST(SweepSpec, RejectsUnknownAndInvalidInput) {
  const char* bad_specs[] = {
      // Unknown top-level key.
      R"({"schema":"nocmap.sweep_spec/1","name":"x","typo":1})",
      // Unknown axis (a misspelling must not collapse to defaults).
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mesh_sides":[4]}})",
      // Missing schema / name.
      R"({"name":"x"})",
      R"({"schema":"nocmap.sweep_spec/1"})",
      // Wrong schema, empty axis, bad values.
      R"({"schema":"nocmap.sweep_spec/2","name":"x"})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mesh_side":[]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mesh_side":[65]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"injection_scale":[2.5]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"config":["C99"]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "mappers":["Bogus"]})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "mappers":["SSS","SSS"]})",
  };
  for (const char* text : bad_specs) {
    EXPECT_THROW((void)parse_spec(std::string(text)), Error) << text;
  }
}

TEST(SweepSpec, DigestTracksCanonicalFormOnly) {
  const CampaignSpec a = test_spec();
  CampaignSpec b = test_spec();
  EXPECT_EQ(spec_digest(a), spec_digest(b));
  b.seed.count = 3;
  EXPECT_NE(spec_digest(a), spec_digest(b));
  // The canonical form parses back to the same digest (defaults are
  // explicit, so canonical -> parse -> canonical is a fixed point).
  const CampaignSpec reparsed = parse_spec(spec_to_json(a));
  EXPECT_EQ(spec_digest(reparsed), spec_digest(a));
}

// -------------------------------------------------------------- expansion

TEST(SweepExpand, IsDeterministicWithDenseIdsAndMapperInnermost) {
  const CampaignSpec spec = test_spec();
  const Expansion a = expand_spec(spec);
  const Expansion b = expand_spec(spec);
  ASSERT_EQ(a.scenarios.size(), 32u);
  EXPECT_EQ(a.combinations, 32u);
  EXPECT_EQ(a.skipped, 0u);
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    EXPECT_EQ(a.scenarios[i].id, i);
    EXPECT_EQ(a.scenarios[i].spec, b.scenarios[i].spec);
    EXPECT_EQ(a.scenarios[i].mapper, b.scenarios[i].mapper);
  }
  // Mapper is the innermost axis: consecutive records alternate mappers
  // over one base scenario.
  EXPECT_EQ(a.scenarios[0].mapper, "Global");
  EXPECT_EQ(a.scenarios[1].mapper, "SSS");
  EXPECT_EQ(a.scenarios[0].spec, a.scenarios[1].spec);
}

TEST(SweepExpand, SkipsInvalidCombinationsOrThrows) {
  CampaignSpec spec = test_spec();
  spec.netsim.enabled = false;
  // 4x4 cannot hold 8 apps x 4 threads; 8x8 can.
  spec.num_applications = {8};
  spec.threads_per_app = {4};
  const Expansion skipped = expand_spec(spec);
  EXPECT_EQ(skipped.combinations, 32u);
  EXPECT_EQ(skipped.skipped, 16u);
  EXPECT_EQ(skipped.scenarios.size(), 16u);
  for (const SweepScenario& s : skipped.scenarios) {
    EXPECT_EQ(s.spec.mesh_side, 8u);
  }

  spec.skip_invalid = false;
  EXPECT_THROW((void)expand_spec(spec), Error);
}

TEST(SweepExpand, ZeroThreadsPerAppFillsTheMesh) {
  CampaignSpec spec;
  spec.name = "fill";
  spec.mesh_side = {8};
  spec.num_applications = {4};
  spec.threads_per_app = {0};
  const Expansion expansion = expand_spec(spec);
  ASSERT_EQ(expansion.scenarios.size(), 1u);
  EXPECT_EQ(expansion.scenarios[0].spec.threads_per_app, 16u);
}

// ------------------------------------------------- generalized scenario axes

TEST(SweepSpec, ParsesGeneralizedAxes) {
  const CampaignSpec spec = parse_spec(std::string(R"({
    "schema": "nocmap.sweep_spec/1",
    "name": "stacked",
    "axes": {
      "mesh_side": [4],
      "mesh_layers": [1, 2, 4],
      "tsv_hop_cost": [0.5, 1.0],
      "mc_placement": ["corners", "random"],
      "mc_count": 3,
      "traffic_mode": ["proximity", "interleaved", "multicast"]
    },
    "mappers": ["SSS"]
  })"));
  EXPECT_EQ(spec.mesh_layers, (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(spec.tsv_hop_cost, (std::vector<double>{0.5, 1.0}));
  EXPECT_EQ(spec.mc_count, 3u);
  EXPECT_EQ(spec.mc_placement,
            (std::vector<McPlacement>{McPlacement::kCorners,
                                      McPlacement::kRandom}));
  EXPECT_EQ(spec.traffic_mode,
            (std::vector<MemoryTrafficMode>{MemoryTrafficMode::kProximity,
                                            MemoryTrafficMode::kInterleaved,
                                            MemoryTrafficMode::kMulticast}));

  const char* bad_specs[] = {
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mesh_layers":[9]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"tsv_hop_cost":[0.0]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"traffic_mode":["bogus"]}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mc_count":0}})",
      R"({"schema":"nocmap.sweep_spec/1","name":"x",
          "axes":{"mc_placement":["nonsense"]}})",
  };
  for (const char* text : bad_specs) {
    EXPECT_THROW((void)parse_spec(std::string(text)), Error) << text;
  }
}

TEST(SweepExpand, FillsGeneralizedScenarioFields) {
  CampaignSpec spec;
  spec.name = "general";
  spec.mesh_side = {4};
  spec.mesh_layers = {2};
  spec.tsv_hop_cost = {0.5};
  spec.mc_placement = {McPlacement::kRandom};
  spec.mc_count = 3;
  spec.traffic_mode = {MemoryTrafficMode::kMulticast};
  spec.num_applications = {2};
  const Expansion expansion = expand_spec(spec);
  ASSERT_EQ(expansion.scenarios.size(), 1u);
  const check::ScenarioSpec& s = expansion.scenarios[0].spec;
  EXPECT_EQ(s.mesh_layers, 2u);
  EXPECT_DOUBLE_EQ(s.tsv_hop_cost, 0.5);
  EXPECT_EQ(s.mc_placement, McPlacement::kRandom);
  EXPECT_EQ(s.mc_count, 3u);
  EXPECT_EQ(s.traffic_mode, MemoryTrafficMode::kMulticast);
  // "fill" threads-per-app sentinel accounts for all layers: 32 tiles / 2.
  EXPECT_EQ(s.threads_per_app, 16u);
}

TEST(SweepExpand, SkipsTorusStacksAndOversizedRandomSets) {
  // Torus wraparound is 2D-only: every (torus, layers>1) grid point is an
  // invalid combo, skipped rather than fatal.
  CampaignSpec spec;
  spec.name = "torus3d";
  spec.mesh_side = {4};
  spec.mesh_layers = {1, 2};
  spec.torus = {false, true};
  spec.num_applications = {2};
  const Expansion expansion = expand_spec(spec);
  EXPECT_EQ(expansion.combinations, 4u);
  EXPECT_EQ(expansion.skipped, 1u);  // torus + 2 layers
  for (const SweepScenario& s : expansion.scenarios) {
    EXPECT_TRUE(!s.spec.torus || s.spec.mesh_layers == 1);
  }
  spec.skip_invalid = false;
  EXPECT_THROW((void)expand_spec(spec), Error);

  // A random MC set larger than the chip is likewise an invalid combo.
  CampaignSpec random_spec;
  random_spec.name = "bigset";
  random_spec.mesh_side = {2, 8};
  random_spec.mc_placement = {McPlacement::kRandom};
  random_spec.mc_count = 16;  // > 4 tiles on the 2x2, fine on the 8x8
  random_spec.num_applications = {1};
  const Expansion rand_exp = expand_spec(random_spec);
  EXPECT_EQ(rand_exp.combinations, 2u);
  EXPECT_EQ(rand_exp.skipped, 1u);
  ASSERT_EQ(rand_exp.scenarios.size(), 1u);
  EXPECT_EQ(rand_exp.scenarios[0].spec.mesh_side, 8u);
}

// Satellite fix pinned: torus grid points used to reach run_simulation and
// abort on the Network ctor's NOCMAP_REQUIRE; they must instead skip the
// netsim stage (sim: null) while the analytic stage still runs.
TEST(SweepRunner, TorusScenariosSkipNetsimStage) {
  CampaignSpec spec;
  spec.name = "torus-netsim";
  spec.mesh_side = {4};
  spec.torus = {false, true};
  spec.num_applications = {2};
  spec.mappers = {"Global"};
  spec.netsim.enabled = true;
  spec.netsim.warmup_cycles = 100;
  spec.netsim.measure_cycles = 500;
  spec.netsim.max_drain_cycles = 10000;

  const fs::path dir = scratch_dir("torus_netsim");
  CampaignOptions options;
  options.out_dir = dir.string();
  options.parallel.num_threads = 1;
  ASSERT_TRUE(run_campaign(spec, options).finished);

  const CampaignLog log =
      read_campaign_log((dir / "campaign.jsonl").string());
  ASSERT_EQ(log.records.size(), 2u);
  int simulated = 0, skipped = 0;
  for (const obs::JsonValue& record : log.records) {
    const bool torus = record.find("topology")->as_string() == "torus";
    const bool has_sim = !record.find("sim")->is_null();
    EXPECT_GT(record.find("max_apl")->as_double(), 0.0);  // analytic ran
    EXPECT_NE(torus, has_sim);
    (torus ? skipped : simulated)++;
  }
  EXPECT_EQ(simulated, 1);
  EXPECT_EQ(skipped, 1);
}

// ----------------------------------------------------------- resumability

/// The tentpole contract: run the campaign to completion three ways —
/// serial in one shot, 2 workers killed after 5 scenarios (plus a torn
/// trailing write) then resumed, 8 workers with a ragged chunk size — and
/// require byte-identical logs (modulo map_us) and byte-identical frontier
/// documents.
TEST(SweepResume, KillAndResumeIsByteIdenticalAcrossWorkerCounts) {
  const CampaignSpec spec = test_spec();

  // Reference: serial, uninterrupted.
  const fs::path dir1 = scratch_dir("serial");
  CampaignOptions serial;
  serial.out_dir = dir1.string();
  serial.parallel.num_threads = 1;
  const CampaignResult ref = run_campaign(spec, serial);
  EXPECT_TRUE(ref.finished);
  EXPECT_EQ(ref.completed, 32u);

  // 2 workers: kill after 5 scenarios, tear the tail, resume.
  const fs::path dir2 = scratch_dir("two_workers");
  CampaignOptions two;
  two.out_dir = dir2.string();
  two.parallel.num_threads = 2;
  two.chunk_size = 5;
  two.max_scenarios = 5;
  const CampaignResult killed = run_campaign(spec, two);
  EXPECT_FALSE(killed.finished);
  EXPECT_EQ(killed.completed, 5u);
  const fs::path log2 = dir2 / "campaign.jsonl";
  // Simulate dying mid-write: append half a record.
  {
    std::ofstream out(log2, std::ios::binary | std::ios::app);
    out << "{\"id\":5,\"index\":5,\"seed\":1,\"mesh_si";
  }
  two.max_scenarios = 0;
  const CampaignResult resumed = run_campaign(spec, two);
  EXPECT_TRUE(resumed.finished);
  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(resumed.completed, 27u);

  // 8 workers, chunk size that does not divide the total.
  const fs::path dir8 = scratch_dir("eight_workers");
  CampaignOptions eight;
  eight.out_dir = dir8.string();
  eight.parallel.num_threads = 8;
  eight.chunk_size = 7;
  EXPECT_TRUE(run_campaign(spec, eight).finished);

  const std::string norm1 = normalized_log(dir1 / "campaign.jsonl");
  EXPECT_EQ(norm1, normalized_log(log2));
  EXPECT_EQ(norm1, normalized_log(dir8 / "campaign.jsonl"));

  const std::string frontier1 = aggregate_file((dir1 / "campaign.jsonl")
                                                   .string())
                                    .dump(2);
  EXPECT_EQ(frontier1, aggregate_file(log2.string()).dump(2));
  EXPECT_EQ(frontier1,
            aggregate_file((dir8 / "campaign.jsonl").string()).dump(2));
}

TEST(SweepResume, RefusesAForeignLog) {
  const CampaignSpec spec = test_spec();
  const fs::path dir = scratch_dir("foreign");
  CampaignOptions options;
  options.out_dir = dir.string();
  options.parallel.num_threads = 1;
  options.max_scenarios = 2;
  (void)run_campaign(spec, options);

  // Same directory, different spec: digest mismatch must throw.
  CampaignSpec other = test_spec();
  other.seed.count = 3;
  EXPECT_THROW((void)run_campaign(other, options), Error);

  // A non-campaign file must be rejected, not resumed over.
  {
    std::ofstream out(dir / "campaign.jsonl",
                      std::ios::binary | std::ios::trunc);
    out << "{\"schema\":\"something.else/1\"}\n";
  }
  EXPECT_THROW((void)run_campaign(spec, options), Error);
}

TEST(SweepResume, ReadLogStopsAtCorruptTail) {
  const CampaignSpec spec = test_spec();
  const fs::path dir = scratch_dir("torn");
  CampaignOptions options;
  options.out_dir = dir.string();
  options.parallel.num_threads = 1;
  options.max_scenarios = 3;
  (void)run_campaign(spec, options);

  const fs::path path = dir / "campaign.jsonl";
  const std::string original = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "not json at all\n{\"id\":99}\n";
  }
  const CampaignLog log = read_campaign_log(path.string());
  EXPECT_EQ(log.records.size(), 3u);
  EXPECT_EQ(log.good_bytes, original.size());
}

// ------------------------------------------------------------- aggregation

TEST(SweepAggregate, FoldsWinsMarginalsAndFrontier) {
  CampaignSpec spec = test_spec();
  spec.netsim.enabled = false;  // analytic-only: "sim" must be null
  const fs::path dir = scratch_dir("aggregate");
  CampaignOptions options;
  options.out_dir = dir.string();
  options.parallel.num_threads = 1;
  ASSERT_TRUE(run_campaign(spec, options).finished);

  const obs::JsonValue doc =
      aggregate_file((dir / "campaign.jsonl").string());
  EXPECT_EQ(doc.find("schema")->as_string(), kSweepFrontierSchema);
  EXPECT_TRUE(doc.find("complete")->as_bool());
  EXPECT_EQ(doc.find("scenarios")->as_uint(), 32u);
  EXPECT_EQ(doc.find("simulated")->as_uint(), 0u);

  // Every base scenario has exactly one winner: wins sum to 16.
  const obs::JsonValue* mappers = doc.find("mappers");
  ASSERT_NE(mappers, nullptr);
  std::uint64_t wins = 0;
  for (const auto& [name, row] : mappers->members()) {
    EXPECT_EQ(row.find("scenarios")->as_uint(), 16u) << name;
    wins += row.find("wins")->as_uint();
  }
  EXPECT_EQ(wins, 16u);

  // Frontier: one cell per (mesh_side x injection) = 4 cells, the best
  // value never above the mean.
  const obs::JsonValue* frontier = doc.find("frontier");
  ASSERT_NE(frontier, nullptr);
  const obs::JsonValue* max_apl = frontier->find("max_apl");
  ASSERT_NE(max_apl, nullptr);
  EXPECT_EQ(max_apl->size(), 4u);
  for (const obs::JsonValue& cell : max_apl->items()) {
    EXPECT_LE(cell.find("best")->as_double(),
              cell.find("mean")->as_double());
    EXPECT_EQ(cell.find("scenarios")->as_uint(), 8u);
  }
  // Analytic-only log: the power frontier is empty.
  EXPECT_EQ(frontier->find("power_mw")->size(), 0u);

  // Axis marginals cover both mesh sides with 16 scenarios each.
  const obs::JsonValue* mesh_axis = doc.find("axes")->find("mesh_side");
  ASSERT_NE(mesh_axis, nullptr);
  ASSERT_EQ(mesh_axis->size(), 2u);
  for (const obs::JsonValue& row : mesh_axis->items()) {
    EXPECT_EQ(row.find("scenarios")->as_uint(), 16u);
  }
}

TEST(SweepAggregate, PartialLogAggregatesAndReportsIncomplete) {
  const CampaignSpec spec = test_spec();
  const fs::path dir = scratch_dir("partial");
  CampaignOptions options;
  options.out_dir = dir.string();
  options.parallel.num_threads = 1;
  options.max_scenarios = 6;
  ASSERT_FALSE(run_campaign(spec, options).finished);

  const obs::JsonValue doc =
      aggregate_file((dir / "campaign.jsonl").string());
  EXPECT_FALSE(doc.find("complete")->as_bool());
  EXPECT_EQ(doc.find("scenarios")->as_uint(), 6u);
}

}  // namespace
}  // namespace nocmap::sweep
