#include "netsim/sim.h"

#include <gtest/gtest.h>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem small_problem() {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(2);
  apps[0].name = "light";
  apps[0].threads.assign(8, ThreadProfile{2.0, 0.3});
  apps[1].name = "heavy";
  apps[1].threads.assign(8, ThreadProfile{8.0, 1.0});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload(std::move(apps)));
}

SimConfig quick_config() {
  SimConfig c;
  c.warmup_cycles = 1000;
  c.measure_cycles = 20000;
  return c;
}

TEST(Sim, ProducesSamplesAndDrains) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  EXPECT_GT(r.packets_measured, 1000u);
  EXPECT_FALSE(r.drain_incomplete);
  EXPECT_GT(r.g_apl, 0.0);
  EXPECT_GT(r.max_apl, 0.0);
  ASSERT_EQ(r.apl.size(), 2u);
  EXPECT_GT(r.apl[0], 0.0);
  EXPECT_GT(r.apl[1], 0.0);
}

TEST(Sim, DeterministicForSeed) {
  const ObmProblem p = small_problem();
  const SimResult a = run_simulation(p, p.identity_mapping(), quick_config());
  const SimResult b = run_simulation(p, p.identity_mapping(), quick_config());
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.g_apl, b.g_apl);
  EXPECT_DOUBLE_EQ(a.max_apl, b.max_apl);
}

TEST(Sim, SeedChangesTraffic) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  const SimResult a = run_simulation(p, p.identity_mapping(), c);
  c.traffic.seed = 999;
  const SimResult b = run_simulation(p, p.identity_mapping(), c);
  EXPECT_NE(a.packets_measured, b.packets_measured);
}

TEST(Sim, AllFourPacketClassesObserved) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  for (std::size_t cls = 0; cls < 4; ++cls) {
    EXPECT_GT(r.per_class[cls].count(), 0u)
        << packet_class_name(static_cast<PacketClass>(cls));
  }
}

TEST(Sim, RepliesSlowerThanRequestsOnAverage) {
  // 5-flit replies carry 4 extra serialization cycles over 1-flit requests.
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  const auto req =
      static_cast<std::size_t>(PacketClass::kCacheRequest);
  const auto rep = static_cast<std::size_t>(PacketClass::kCacheReply);
  EXPECT_GT(r.per_class[rep].mean(), r.per_class[req].mean() + 2.0);
}

// Measured latency must track the analytic model: tiles with larger TC see
// larger measured cache latency (constant pipeline offset aside).
TEST(Sim, MeasuredAplTracksAnalyticOrdering) {
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, LatencyParams{});
  // Two single-thread "applications": one on the corner, one in the middle.
  std::vector<Application> apps(2);
  apps[0].name = "corner";
  apps[0].threads.assign(1, ThreadProfile{20.0, 0.0});
  apps[1].name = "center";
  apps[1].threads.assign(1, ThreadProfile{20.0, 0.0});
  Workload wl = Workload(std::move(apps)).padded_to(16);
  const ObmProblem p(model, std::move(wl));

  Mapping m;
  m.thread_to_tile.resize(16);
  m.thread_to_tile[0] = mesh.tile_at(0, 0);  // corner: TC high
  m.thread_to_tile[1] = mesh.tile_at(1, 1);  // center: TC low
  TileId next = 0;
  for (std::size_t j = 2; j < 16; ++j) {
    while (next == mesh.tile_at(0, 0) || next == mesh.tile_at(1, 1)) ++next;
    m.thread_to_tile[j] = next++;
  }
  ASSERT_TRUE(m.is_valid_permutation(16));

  SimConfig c = quick_config();
  c.measure_cycles = 50000;
  const SimResult r = run_simulation(p, m, c);
  EXPECT_GT(r.apl[0], r.apl[1]);  // corner app slower, as analytic predicts
}

TEST(Sim, ZeroTrafficApplicationYieldsZeroApl) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(1);
  apps[0].name = "only";
  apps[0].threads.assign(8, ThreadProfile{5.0, 0.5});
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     Workload(std::move(apps)).padded_to(16));
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  EXPECT_DOUBLE_EQ(r.apl[1], 0.0);  // the idle pad application
  EXPECT_EQ(r.per_app[1].count(), 0u);
}

TEST(Sim, LocalAccessesRecordedAsZeroLatency) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  // On a 16-tile chip, 1/16 of cache requests hash to the local bank.
  EXPECT_GT(r.local_accesses, 0u);
  EXPECT_DOUBLE_EQ(r.overall.min(), 0.0);
}

TEST(Sim, ActivityCountersPopulated) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  EXPECT_GT(r.activity.link_traversals, 0u);
  EXPECT_GT(r.activity.buffer_writes, 0u);
  EXPECT_EQ(r.measured_cycles, quick_config().measure_cycles);
}

// An empty measurement window must report zero everything: the activity
// reset used to fire only on a `cycle == measure_start` test inside the
// warmup+measure loop, so measure_cycles == 0 skipped the reset and leaked
// all warmup activity (thousands of buffer writes) into the result.
TEST(Sim, EmptyMeasurementWindowReportsZeroActivity) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  c.measure_cycles = 0;
  const SimResult r = run_simulation(p, p.identity_mapping(), c);
  EXPECT_EQ(r.measured_cycles, 0u);
  EXPECT_EQ(r.packets_measured, 0u);
  EXPECT_EQ(r.local_accesses, 0u);
  EXPECT_EQ(r.activity.buffer_writes, 0u);
  EXPECT_EQ(r.activity.crossbar_traversals, 0u);
  EXPECT_EQ(r.activity.link_traversals, 0u);
  EXPECT_DOUBLE_EQ(r.load.max_crossbar_per_cycle, 0.0);
  EXPECT_DOUBLE_EQ(r.load.link_utilization, 0.0);
}

// The measurement-window activity and load summary are snapshotted at the
// window's end, so the drain phase — however long it runs — cannot inflate
// them. Heavy bursty load leaves plenty of in-flight traffic at the window
// boundary, making the drain long enough to expose any leak.
TEST(Sim, DrainLengthDoesNotAffectMeasuredActivityOrLoad) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  c.traffic.injection_scale = 6.0;
  c.traffic.bursty = true;
  c.traffic.burst_duty = 0.25;

  SimConfig no_drain = c;
  no_drain.max_drain_cycles = 0;
  SimConfig long_drain = c;
  long_drain.max_drain_cycles = 400000;

  const SimResult a = run_simulation(p, p.identity_mapping(), no_drain);
  const SimResult b = run_simulation(p, p.identity_mapping(), long_drain);

  // The drained run really did keep simulating past the window...
  EXPECT_TRUE(a.drain_incomplete);
  EXPECT_FALSE(b.drain_incomplete);
  EXPECT_GT(b.activity_with_drain.crossbar_traversals,
            a.activity_with_drain.crossbar_traversals);

  // ...yet the measurement-window activity and load digest are identical.
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.activity.crossbar_traversals, b.activity.crossbar_traversals);
  EXPECT_EQ(a.activity.link_traversals, b.activity.link_traversals);
  EXPECT_EQ(a.activity.queue_wait_cycles, b.activity.queue_wait_cycles);
  EXPECT_EQ(a.load.max_crossbar_per_cycle, b.load.max_crossbar_per_cycle);
  EXPECT_EQ(a.load.mean_crossbar_per_cycle, b.load.mean_crossbar_per_cycle);
  EXPECT_EQ(a.load.max_avg_queue_wait, b.load.max_avg_queue_wait);
  EXPECT_EQ(a.load.max_queue_occupancy, b.load.max_queue_occupancy);
  EXPECT_EQ(a.load.link_utilization, b.load.link_utilization);
  EXPECT_EQ(a.load.hottest_router, b.load.hottest_router);
}

TEST(Sim, InjectionScaleIncreasesTraffic) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  const SimResult base = run_simulation(p, p.identity_mapping(), c);
  c.traffic.injection_scale = 2.0;
  const SimResult heavy = run_simulation(p, p.identity_mapping(), c);
  EXPECT_GT(heavy.packets_measured,
            static_cast<std::uint64_t>(
                static_cast<double>(base.packets_measured) * 1.5));
}

TEST(Sim, PairedTrafficAcrossMappings) {
  // Per-thread RNG streams make a thread's request sequence identical
  // under any mapping: per-application sample counts must agree across two
  // different mappings up to window edge effects (local accesses complete
  // instantly; remote ones may slip past the measurement window).
  const ObmProblem p = small_problem();
  Mapping swapped = p.identity_mapping();
  std::swap(swapped.thread_to_tile[0], swapped.thread_to_tile[15]);
  std::swap(swapped.thread_to_tile[3], swapped.thread_to_tile[8]);
  const SimResult a = run_simulation(p, p.identity_mapping(), quick_config());
  const SimResult b = run_simulation(p, swapped, quick_config());
  for (std::size_t app = 0; app < 2; ++app) {
    const double ca = static_cast<double>(a.per_app[app].count());
    const double cb = static_cast<double>(b.per_app[app].count());
    EXPECT_NEAR(ca, cb, 0.02 * ca) << "app " << app;
  }
}

TEST(Sim, PerAppPercentilesOrdered) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  for (std::size_t app = 0; app < 2; ++app) {
    const double p50 = r.app_percentile(app, 0.50);
    const double p95 = r.app_percentile(app, 0.95);
    const double p99 = r.app_percentile(app, 0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(p99, 0.0);
  }
}

TEST(Sim, QueuingDelaySmallAtPaperLoads) {
  // Paper Section II.C: td_q is 0..1 cycles at the evaluated loads.
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  EXPECT_LT(r.activity.avg_queue_wait(), 1.0);
}

TEST(Sim, QueuingDelayGrowsWithLoad) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  const SimResult light = run_simulation(p, p.identity_mapping(), c);
  c.traffic.injection_scale = 8.0;
  const SimResult heavy = run_simulation(p, p.identity_mapping(), c);
  EXPECT_GT(heavy.activity.avg_queue_wait(),
            light.activity.avg_queue_wait());
}

TEST(TrafficEngine, RequiresValidMapping) {
  const ObmProblem p = small_problem();
  Mapping bad;
  bad.thread_to_tile.assign(16, 0);
  EXPECT_THROW(TrafficEngine(p, bad, TrafficConfig{}), Error);
}

TEST(Sim, BurstyPreservesMeanRate) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  c.measure_cycles = 60000;
  const SimResult steady = run_simulation(p, p.identity_mapping(), c);
  c.traffic.bursty = true;
  const SimResult bursty = run_simulation(p, p.identity_mapping(), c);
  const double ratio = static_cast<double>(bursty.packets_measured) /
                       static_cast<double>(steady.packets_measured);
  EXPECT_NEAR(ratio, 1.0, 0.12);
}

TEST(Sim, BurstinessFattensTheTail) {
  // Same mean load, but on-phases at 1/duty the rate: queuing spikes show
  // up in the p99 even when the mean barely moves.
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  c.measure_cycles = 60000;
  c.traffic.injection_scale = 3.0;  // enough load for queues to form
  const SimResult steady = run_simulation(p, p.identity_mapping(), c);
  c.traffic.bursty = true;
  c.traffic.burst_duty = 0.25;
  const SimResult bursty = run_simulation(p, p.identity_mapping(), c);
  EXPECT_GT(bursty.app_percentile(1, 0.99), steady.app_percentile(1, 0.99));
}

TEST(TrafficEngine, BurstParamsValidated) {
  const ObmProblem p = small_problem();
  TrafficConfig cfg;
  cfg.bursty = true;
  cfg.burst_duty = 0.0;
  EXPECT_THROW(TrafficEngine(p, p.identity_mapping(), cfg), Error);
  cfg.burst_duty = 1.0;
  EXPECT_THROW(TrafficEngine(p, p.identity_mapping(), cfg), Error);
  cfg.burst_duty = 0.3;
  cfg.burst_dwell_cycles = 1.0;
  EXPECT_THROW(TrafficEngine(p, p.identity_mapping(), cfg), Error);
}

TEST(TrafficEngine, ForwardProbabilityValidated) {
  const ObmProblem p = small_problem();
  TrafficConfig cfg;
  cfg.forward_probability = 1.5;
  EXPECT_THROW(TrafficEngine(p, p.identity_mapping(), cfg), Error);
  cfg.forward_probability = -0.1;
  EXPECT_THROW(TrafficEngine(p, p.identity_mapping(), cfg), Error);
}

TEST(Sim, NoForwardPacketsByDefault) {
  const ObmProblem p = small_problem();
  const SimResult r = run_simulation(p, p.identity_mapping(), quick_config());
  const auto fwd = static_cast<std::size_t>(PacketClass::kCacheForward);
  EXPECT_EQ(r.per_class[fwd].count(), 0u);
}

TEST(Sim, CoherenceForwardingProducesThreeHopChains) {
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  c.traffic.forward_probability = 0.5;
  const SimResult r = run_simulation(p, p.identity_mapping(), c);
  const auto fwd = static_cast<std::size_t>(PacketClass::kCacheForward);
  const auto req = static_cast<std::size_t>(PacketClass::kCacheRequest);
  EXPECT_GT(r.per_class[fwd].count(), 0u);
  // Roughly half the non-local cache requests should trigger a forward.
  const double ratio = static_cast<double>(r.per_class[fwd].count()) /
                       static_cast<double>(r.per_class[req].count());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.7);
  EXPECT_FALSE(r.drain_incomplete);
}

TEST(Sim, ForwardingAddsPacketsNotFewer) {
  // The three-hop chain inserts an extra short packet per forwarded
  // transaction. Note the per-packet mean g-APL can *drop* (the added
  // packets are short); what must grow is the packet count — transaction
  // latency is the per-class sum, checked below.
  const ObmProblem p = small_problem();
  SimConfig c = quick_config();
  const SimResult base = run_simulation(p, p.identity_mapping(), c);
  c.traffic.forward_probability = 0.8;
  const SimResult fwd = run_simulation(p, p.identity_mapping(), c);
  EXPECT_GT(fwd.packets_measured, base.packets_measured);

  // Per-transaction view: request + (forward +) reply means forwarded runs
  // pay at least one extra traversal on average.
  auto transaction_latency = [](const SimResult& r) {
    const auto req = static_cast<std::size_t>(PacketClass::kCacheRequest);
    const auto f = static_cast<std::size_t>(PacketClass::kCacheForward);
    const auto rep = static_cast<std::size_t>(PacketClass::kCacheReply);
    const double forwards_per_request =
        r.per_class[req].count() > 0
            ? static_cast<double>(r.per_class[f].count()) /
                  static_cast<double>(r.per_class[req].count())
            : 0.0;
    return r.per_class[req].mean() +
           forwards_per_request * r.per_class[f].mean() +
           r.per_class[rep].mean();
  };
  EXPECT_GT(transaction_latency(fwd), transaction_latency(base));
}

// --- Memory-traffic modes --------------------------------------------------

ObmProblem mode_problem(MemoryTrafficMode mode) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(2);
  apps[0].name = "light";
  apps[0].threads.assign(8, ThreadProfile{2.0, 0.8});
  apps[1].name = "heavy";
  apps[1].threads.assign(8, ThreadProfile{8.0, 1.5});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}, mode),
                    Workload(std::move(apps)));
}

TEST(SimMemoryModes, ModeComesFromTheProblemModel) {
  // run_simulation derives the traffic engine's memory mode from the
  // problem's latency model; a contradictory SimConfig setting is ignored,
  // so analytic and measured results can never disagree about the mode.
  const ObmProblem proximity = mode_problem(MemoryTrafficMode::kProximity);
  SimConfig c = quick_config();
  c.traffic.memory_mode = MemoryTrafficMode::kMulticast;
  const SimResult r = run_simulation(proximity, proximity.identity_mapping(),
                                     c);
  const auto fwd = static_cast<std::size_t>(PacketClass::kMemoryForward);
  EXPECT_EQ(r.per_class[fwd].count(), 0u);
}

TEST(SimMemoryModes, AllModesConserveFlits) {
  for (const MemoryTrafficMode mode :
       {MemoryTrafficMode::kProximity, MemoryTrafficMode::kInterleaved,
        MemoryTrafficMode::kMulticast}) {
    SCOPED_TRACE(memory_traffic_mode_name(mode));
    const ObmProblem p = mode_problem(mode);
    const SimResult r =
        run_simulation(p, p.identity_mapping(), quick_config());
    EXPECT_FALSE(r.drain_incomplete);
    EXPECT_EQ(r.flits_injected, r.flits_ejected);
    const auto req = static_cast<std::size_t>(PacketClass::kMemoryRequest);
    const auto rep = static_cast<std::size_t>(PacketClass::kMemoryReply);
    EXPECT_GT(r.per_class[req].count(), 0u);
    EXPECT_GT(r.per_class[rep].count(), 0u);
  }
}

TEST(SimMemoryModes, InterleavingLengthensMemoryRequests) {
  // Round-robin over all MCs replaces the nearest-MC distance with the
  // average distance, so measured memory-request latency must rise.
  const ObmProblem near = mode_problem(MemoryTrafficMode::kProximity);
  const ObmProblem inter = mode_problem(MemoryTrafficMode::kInterleaved);
  const SimResult a =
      run_simulation(near, near.identity_mapping(), quick_config());
  const SimResult b =
      run_simulation(inter, inter.identity_mapping(), quick_config());
  const auto req = static_cast<std::size_t>(PacketClass::kMemoryRequest);
  EXPECT_GT(b.per_class[req].mean(), a.per_class[req].mean());
}

TEST(SimMemoryModes, MulticastEmitsForwardSegmentsAndOneReply) {
  const ObmProblem p = mode_problem(MemoryTrafficMode::kMulticast);
  const SimResult r =
      run_simulation(p, p.identity_mapping(), quick_config());
  const auto fwd = static_cast<std::size_t>(PacketClass::kMemoryForward);
  const auto req = static_cast<std::size_t>(PacketClass::kMemoryRequest);
  const auto rep = static_cast<std::size_t>(PacketClass::kMemoryReply);
  // Reaching 4 corner MCs from one source takes branch segments beyond the
  // plain delivery packets.
  EXPECT_GT(r.per_class[fwd].count(), 0u);
  // Every request transaction still gets exactly one reply (from the
  // responder MC), so replies cannot outnumber MC deliveries.
  EXPECT_GT(r.per_class[rep].count(), 0u);
  EXPECT_LT(r.per_class[rep].count(), r.per_class[req].count());
  EXPECT_FALSE(r.drain_incomplete);
}

TEST(SimMemoryModes, StackedMeshSimulatesAllModes) {
  const Mesh mesh = Mesh::stacked_with_placement(2, 4, McPlacement::kCorners,
                                                 0.5);
  for (const MemoryTrafficMode mode :
       {MemoryTrafficMode::kProximity, MemoryTrafficMode::kInterleaved,
        MemoryTrafficMode::kMulticast}) {
    SCOPED_TRACE(memory_traffic_mode_name(mode));
    std::vector<Application> apps(2);
    apps[0].name = "a";
    apps[0].threads.assign(16, ThreadProfile{3.0, 0.6});
    apps[1].name = "b";
    apps[1].threads.assign(16, ThreadProfile{6.0, 1.2});
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}, mode),
                       Workload(std::move(apps)));
    const SimResult r =
        run_simulation(p, p.identity_mapping(), quick_config());
    EXPECT_GT(r.packets_measured, 0u);
    EXPECT_FALSE(r.drain_incomplete);
    EXPECT_EQ(r.flits_injected, r.flits_ejected);
  }
}

}  // namespace
}  // namespace nocmap
