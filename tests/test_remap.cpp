#include "core/remap.h"

#include <gtest/gtest.h>

#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem(std::uint64_t seed = 51) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), seed));
}

TEST(CountMoved, Basics) {
  Mapping a, b;
  a.thread_to_tile = {0, 1, 2, 3};
  b.thread_to_tile = {0, 2, 1, 3};
  EXPECT_EQ(count_moved_threads(a, b), 2u);
  EXPECT_EQ(count_moved_threads(a, a), 0u);
  // Shorter old mapping: the extra threads count as moved.
  Mapping shorter;
  shorter.thread_to_tile = {0, 1};
  EXPECT_EQ(count_moved_threads(shorter, a), 2u);
}

TEST(Remap, ZeroPenaltyMatchesSssQuality) {
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p);
  const RemapResult r = remap_balanced(p, old, 0.0);
  EXPECT_TRUE(r.mapping.is_valid_permutation(p.num_threads()));
  const double sss_obj = evaluate(p, old).max_apl;
  EXPECT_NEAR(r.report.max_apl, sss_obj, 0.05);
}

TEST(Remap, RemapFromOwnSssSolutionMovesNothing) {
  // Old mapping == the fresh SSS solution: with any positive penalty, the
  // within-app Hungarian must keep everything in place.
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p);
  const RemapResult r = remap_balanced(p, old, 10.0);
  EXPECT_EQ(r.moved_threads, 0u);
  EXPECT_EQ(r.mapping.thread_to_tile, old.thread_to_tile);
}

TEST(Remap, PenaltyReducesMigrations) {
  // Old mapping: a different workload seed's solution (application change).
  const ObmProblem p_old = c1_problem(51);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C3"), 52));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);

  const RemapResult free_moves = remap_balanced(p_new, old, 0.0);
  const RemapResult costly = remap_balanced(p_new, old, 5.0);
  const RemapResult very_costly = remap_balanced(p_new, old, 1000.0);
  EXPECT_LE(costly.moved_threads, free_moves.moved_threads);
  EXPECT_LE(very_costly.moved_threads, costly.moved_threads);
}

TEST(Remap, BalanceMaintainedUnderPenalty) {
  const ObmProblem p_old = c1_problem(53);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C5"), 54));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);
  const RemapResult r = remap_balanced(p_new, old, 100.0);
  // Tile sets come from fresh SSS, so balance survives any penalty: the
  // sticky within-app assignment perturbs APLs slightly but stays an order
  // of magnitude below Global's ~2-cycle dev-APL.
  EXPECT_LT(r.report.dev_apl, 0.5);
}

TEST(Remap, QualityDegradesGracefullyWithPenalty) {
  const ObmProblem p_old = c1_problem(55);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C4"), 56));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);
  const RemapResult free_moves = remap_balanced(p_new, old, 0.0);
  const RemapResult sticky = remap_balanced(p_new, old, 1000.0);
  // Sticking to old positions can only cost (within-app assignment is no
  // longer latency-optimal), but the tile sets bound the damage.
  EXPECT_GE(sticky.report.max_apl, free_moves.report.max_apl - 1e-9);
  EXPECT_LT(sticky.report.max_apl, free_moves.report.max_apl * 1.15);
}

TEST(Remap, NewThreadsCountAsMoved) {
  // Old mapping shorter than the new problem (application arrived).
  const ObmProblem p = c1_problem(57);
  Mapping tiny;
  tiny.thread_to_tile = {};  // nobody had a position
  const RemapResult r = remap_balanced(p, tiny, 3.0);
  EXPECT_EQ(r.moved_threads, p.num_threads());
}

TEST(Remap, NegativePenaltyRejected) {
  const ObmProblem p = c1_problem();
  EXPECT_THROW(remap_balanced(p, p.identity_mapping(), -1.0), Error);
}

TEST(BudgetedRemap, BudgetZeroForcesIdentity) {
  // Old mapping from a different workload: the fresh tile sets differ, so
  // an unconstrained remap would move threads — budget 0 must not.
  const ObmProblem p_old = c1_problem(61);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C3"), 62));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);

  const BudgetedRemapResult r = remap_budgeted(p_new, old, 0);
  EXPECT_EQ(r.remap.moved_threads, 0u);
  for (std::size_t j = 0; j < p_new.num_threads(); ++j) {
    if (p_new.workload().thread(j).total_rate() <= 0.0) continue;
    EXPECT_EQ(r.remap.mapping.thread_to_tile[j], old.thread_to_tile[j])
        << "thread " << j << " migrated under a zero budget";
  }
  if (r.reverted_to_old) {
    EXPECT_EQ(r.remap.mapping.thread_to_tile, old.thread_to_tile);
  }
}

TEST(BudgetedRemap, UnboundedBudgetMatchesUnconstrainedRemap) {
  const ObmProblem p_old = c1_problem(63);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C5"), 64));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);

  const BudgetedRemapResult unbounded =
      remap_budgeted(p_new, old, static_cast<std::size_t>(-1));
  const RemapResult free_moves = remap_balanced(p_new, old, 0.0);
  EXPECT_EQ(unbounded.remap.mapping.thread_to_tile,
            free_moves.mapping.thread_to_tile);
  EXPECT_EQ(unbounded.remap.moved_threads, free_moves.moved_threads);
  EXPECT_EQ(unbounded.penalty_cycles, 0.0);
  EXPECT_FALSE(unbounded.reverted_to_old);
}

TEST(BudgetedRemap, BudgetSweepAlwaysRespected) {
  const ObmProblem p_old = c1_problem(65);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C4"), 66));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);

  const std::size_t unconstrained =
      remap_balanced(p_new, old, 0.0).moved_threads;
  for (const std::size_t budget : {std::size_t{0}, std::size_t{2},
                                   std::size_t{5}, std::size_t{11},
                                   unconstrained / 2, unconstrained}) {
    const BudgetedRemapResult r = remap_budgeted(p_new, old, budget);
    EXPECT_TRUE(r.remap.mapping.is_valid_permutation(p_new.num_threads()));
    EXPECT_LE(r.remap.moved_threads, budget) << "budget " << budget;
  }
}

TEST(BudgetedRemap, DepartureFreesNonContiguousRegion) {
  // Three applications resident, the middle one departs: its freed tiles
  // are scattered across the chip (SSS interleaves tile sets), and the
  // survivors' old positions must line up with the *new* problem's thread
  // order with the pad threads parked on the freed tiles.
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, LatencyParams{});
  SynthesisOptions opt;
  opt.num_applications = 3;
  opt.threads_per_app = 5;
  const Workload full =
      synthesize_workload(parsec_config("C2"), 67, opt).padded_to(16);
  const ObmProblem p_full(model, Workload{full});
  SortSelectSwapMapper sss;
  const Mapping before = sss.map(p_full);

  // Rebuild the workload without application 1 and align the old mapping.
  std::vector<Application> survivors = {full.application(0),
                                        full.application(2)};
  const ObmProblem p_after(
      model, Workload{std::move(survivors)}.padded_to(16));
  Mapping old;
  std::vector<bool> kept(16, false);
  for (const std::size_t a : {std::size_t{0}, std::size_t{2}}) {
    for (std::size_t j = full.first_thread(a); j < full.last_thread(a);
         ++j) {
      old.thread_to_tile.push_back(before.thread_to_tile[j]);
      kept[before.thread_to_tile[j]] = true;
    }
  }
  std::size_t contiguity_breaks = 0;
  for (TileId k = 0; k < 16; ++k) {
    if (!kept[k]) old.thread_to_tile.push_back(k);
    if (k > 0 && !kept[k] != !kept[k - 1]) ++contiguity_breaks;
  }
  ASSERT_TRUE(old.is_valid_permutation(16));
  // The departed application's region really is non-contiguous in tile id
  // space (otherwise this test degenerates to the trivial suffix case).
  ASSERT_GT(contiguity_breaks, 1u);

  const BudgetedRemapResult tight = remap_budgeted(p_after, old, 3);
  EXPECT_TRUE(tight.remap.mapping.is_valid_permutation(16));
  EXPECT_LE(tight.remap.moved_threads, 3u);

  // With the freed region available, an unbounded remap must do at least
  // as well as staying put.
  const BudgetedRemapResult loose =
      remap_budgeted(p_after, old, static_cast<std::size_t>(-1));
  EXPECT_LE(loose.remap.report.max_apl,
            evaluate(p_after, old).max_apl + 1e-9);
}

}  // namespace
}  // namespace nocmap
