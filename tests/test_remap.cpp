#include "core/remap.h"

#include <gtest/gtest.h>

#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem(std::uint64_t seed = 51) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), seed));
}

TEST(CountMoved, Basics) {
  Mapping a, b;
  a.thread_to_tile = {0, 1, 2, 3};
  b.thread_to_tile = {0, 2, 1, 3};
  EXPECT_EQ(count_moved_threads(a, b), 2u);
  EXPECT_EQ(count_moved_threads(a, a), 0u);
  // Shorter old mapping: the extra threads count as moved.
  Mapping shorter;
  shorter.thread_to_tile = {0, 1};
  EXPECT_EQ(count_moved_threads(shorter, a), 2u);
}

TEST(Remap, ZeroPenaltyMatchesSssQuality) {
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p);
  const RemapResult r = remap_balanced(p, old, 0.0);
  EXPECT_TRUE(r.mapping.is_valid_permutation(p.num_threads()));
  const double sss_obj = evaluate(p, old).max_apl;
  EXPECT_NEAR(r.report.max_apl, sss_obj, 0.05);
}

TEST(Remap, RemapFromOwnSssSolutionMovesNothing) {
  // Old mapping == the fresh SSS solution: with any positive penalty, the
  // within-app Hungarian must keep everything in place.
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p);
  const RemapResult r = remap_balanced(p, old, 10.0);
  EXPECT_EQ(r.moved_threads, 0u);
  EXPECT_EQ(r.mapping.thread_to_tile, old.thread_to_tile);
}

TEST(Remap, PenaltyReducesMigrations) {
  // Old mapping: a different workload seed's solution (application change).
  const ObmProblem p_old = c1_problem(51);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C3"), 52));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);

  const RemapResult free_moves = remap_balanced(p_new, old, 0.0);
  const RemapResult costly = remap_balanced(p_new, old, 5.0);
  const RemapResult very_costly = remap_balanced(p_new, old, 1000.0);
  EXPECT_LE(costly.moved_threads, free_moves.moved_threads);
  EXPECT_LE(very_costly.moved_threads, costly.moved_threads);
}

TEST(Remap, BalanceMaintainedUnderPenalty) {
  const ObmProblem p_old = c1_problem(53);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C5"), 54));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);
  const RemapResult r = remap_balanced(p_new, old, 100.0);
  // Tile sets come from fresh SSS, so balance survives any penalty: the
  // sticky within-app assignment perturbs APLs slightly but stays an order
  // of magnitude below Global's ~2-cycle dev-APL.
  EXPECT_LT(r.report.dev_apl, 0.5);
}

TEST(Remap, QualityDegradesGracefullyWithPenalty) {
  const ObmProblem p_old = c1_problem(55);
  const ObmProblem p_new(
      TileLatencyModel(Mesh::square(8), LatencyParams{}),
      synthesize_workload(parsec_config("C4"), 56));
  SortSelectSwapMapper sss;
  const Mapping old = sss.map(p_old);
  const RemapResult free_moves = remap_balanced(p_new, old, 0.0);
  const RemapResult sticky = remap_balanced(p_new, old, 1000.0);
  // Sticking to old positions can only cost (within-app assignment is no
  // longer latency-optimal), but the tile sets bound the damage.
  EXPECT_GE(sticky.report.max_apl, free_moves.report.max_apl - 1e-9);
  EXPECT_LT(sticky.report.max_apl, free_moves.report.max_apl * 1.15);
}

TEST(Remap, NewThreadsCountAsMoved) {
  // Old mapping shorter than the new problem (application arrived).
  const ObmProblem p = c1_problem(57);
  Mapping tiny;
  tiny.thread_to_tile = {};  // nobody had a position
  const RemapResult r = remap_balanced(p, tiny, 3.0);
  EXPECT_EQ(r.moved_threads, p.num_threads());
}

TEST(Remap, NegativePenaltyRejected) {
  const ObmProblem p = c1_problem();
  EXPECT_THROW(remap_balanced(p, p.identity_mapping(), -1.0), Error);
}

}  // namespace
}  // namespace nocmap
