#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nocmap {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(8);
  std::vector<long> partial(10000, 0);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 10000L * 9999L / 2);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(0, 50, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 50);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A parallel_for body that itself calls parallel_for on the same pool
  // must complete (nested calls run inline on the worker thread).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadFalseOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(FreeParallelFor, NestedViaFreeFunction) {
  std::vector<std::atomic<int>> hits(36);
  parallel_for(0, 6, [&](std::size_t outer) {
    parallel_for(0, 6,
                 [&](std::size_t inner) { ++hits[outer * 6 + inner]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FreeParallelFor, Works) {
  std::vector<std::atomic<int>> hits(200);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace nocmap
