#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nocmap {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(8);
  std::vector<long> partial(10000, 0);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 10000L * 9999L / 2);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(0, 50, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 50);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A parallel_for body that itself calls parallel_for on the same pool
  // must complete (nested calls run inline on the worker thread).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadFalseOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(FreeParallelFor, NestedViaFreeFunction) {
  std::vector<std::atomic<int>> hits(36);
  parallel_for(0, 6, [&](std::size_t outer) {
    parallel_for(0, 6,
                 [&](std::size_t inner) { ++hits[outer * 6 + inner]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FreeParallelFor, Works) {
  std::vector<std::atomic<int>> hits(200);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------------
// Exception-path hardening. These pin down the contract the mapping engine
// relies on: a throwing body never kills a worker, never wedges the pool,
// and surfaces to exactly one caller exactly once.

TEST(ThreadPoolExceptions, ThrowOnSingleWorkerPool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("one worker");
                        }),
      std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolExceptions, ThrowWithRangeSmallerThanPool) {
  // Fewer chunks than workers: some workers never see a task; the waiter
  // must still be released and the error still delivered.
  ThreadPool pool(8);
  EXPECT_THROW(pool.parallel_for(0, 2,
                                 [](std::size_t) {
                                   throw std::runtime_error("tiny range");
                                 }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 2, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolExceptions, EveryChunkThrowingRethrowsExactlyOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    int caught = 0;
    try {
      pool.parallel_for(0, 64, [](std::size_t) {
        throw std::runtime_error("all chunks throw");
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
    EXPECT_EQ(caught, 1) << "round " << round;
  }
  // After 20 fully-throwing calls the pool still works and no stale error
  // leaks into a clean call.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolExceptions, NestedInlineBodyThrowPropagates) {
  // A nested parallel_for runs inline on the worker; its exception must
  // surface through the outer chunk's capture, not kill the worker.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t outer) {
                                   pool.parallel_for(
                                       0, 4, [outer](std::size_t inner) {
                                         if (outer == 1 && inner == 2) {
                                           throw std::runtime_error("nested");
                                         }
                                       });
                                 }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 8, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolExceptions, SubmitTaskErrorSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("submitted"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error slot is cleared by the rethrow: a second wait is clean and
  // the pool remains usable.
  EXPECT_NO_THROW(pool.wait_idle());
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolExceptions, SubmitErrorKeepsFirstOfMany) {
  ThreadPool pool(2);
  for (int i = 0; i < 32; ++i) {
    pool.submit([] { throw std::runtime_error("many"); });
  }
  int caught = 0;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolStress, ConcurrentCallersWithExceptionIsolation) {
  // Several external threads drive parallel_for on one shared pool while a
  // background thread keeps submit()-ing; one caller's throwing body must
  // reach that caller only, and every other caller's work must be intact.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kRounds = 25;
  std::vector<std::vector<int>> sums(kCallers, std::vector<int>(kRounds, 0));
  std::atomic<int> submitted{0};
  std::atomic<bool> stop_submitting{false};
  std::atomic<int> thrower_catches{0};

  std::thread submitter([&] {
    while (!stop_submitting.load()) {
      pool.submit([&submitted] { ++submitted; });
      pool.wait_idle();  // also exercises waiter/worker interleaving
    }
  });

  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        if (c == 0) {  // caller 0 always throws mid-range
          try {
            pool.parallel_for(0, 97, [](std::size_t i) {
              if (i == 31) throw std::runtime_error("isolated");
            });
          } catch (const std::runtime_error&) {
            ++thrower_catches;
          }
        } else {
          std::atomic<int> local{0};
          pool.parallel_for(0, 200, [&local](std::size_t) { ++local; });
          sums[static_cast<std::size_t>(c)][round] = local.load();
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  stop_submitting.store(true);
  submitter.join();

  EXPECT_EQ(thrower_catches.load(), kRounds);
  for (int c = 1; c < kCallers; ++c) {
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_EQ(sums[static_cast<std::size_t>(c)][round], 200)
          << "caller " << c << " round " << round;
    }
  }
  EXPECT_GT(submitted.load(), 0);
}

}  // namespace
}  // namespace nocmap
