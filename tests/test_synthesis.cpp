#include "workload/synthesis.h"

#include <gtest/gtest.h>

#include <set>

namespace nocmap {
namespace {

TEST(Table3Configs, AllEightPresent) {
  const auto configs = parsec_table3_configs();
  ASSERT_EQ(configs.size(), 8u);
  std::set<std::string> names;
  for (const auto& c : configs) names.insert(c.name);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_TRUE(names.contains("C" + std::to_string(i)));
  }
}

TEST(Table3Configs, PaperValues) {
  const ConfigSpec c1 = parsec_config("C1");
  EXPECT_DOUBLE_EQ(c1.cache.mean, 7.008);
  EXPECT_DOUBLE_EQ(c1.cache.stddev, 88.3);
  EXPECT_DOUBLE_EQ(c1.memory.mean, 0.899);
  EXPECT_DOUBLE_EQ(c1.memory.stddev, 9.84);
  const ConfigSpec c7 = parsec_config("C7");
  EXPECT_DOUBLE_EQ(c7.cache.mean, 1.992);
}

TEST(Table3Configs, UnknownNameThrows) {
  EXPECT_THROW(parsec_config("C9"), Error);
  EXPECT_THROW(parsec_config(""), Error);
}

TEST(Synthesis, ShapeMatchesOptions) {
  const Workload wl = synthesize_workload(parsec_config("C1"), 1);
  EXPECT_EQ(wl.num_applications(), 4u);
  EXPECT_EQ(wl.num_threads(), 64u);
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(wl.application(a).num_threads(), 16u);
  }
}

TEST(Synthesis, ExactMeanRates) {
  for (const auto& spec : parsec_table3_configs()) {
    const Workload wl = synthesize_workload(spec, 7);
    const WorkloadMoments m = measure_moments(wl);
    EXPECT_NEAR(m.cache.mean, spec.cache.mean, 1e-9) << spec.name;
    EXPECT_NEAR(m.memory.mean, spec.memory.mean, 1e-9) << spec.name;
  }
}

TEST(Synthesis, ModerateThreadHeterogeneity) {
  // Table-3 std-devs are temporal, not per-thread (see synthesis.h); the
  // realized per-thread spread must be moderate: enough for SAM to matter,
  // not so extreme that one thread dominates an application's APL.
  const Workload wl = synthesize_workload(parsec_config("C1"), 3);
  const WorkloadMoments m = measure_moments(wl);
  const double cv = m.cache.stddev / m.cache.mean;
  EXPECT_GT(cv, 0.3);
  EXPECT_LT(cv, 2.5);
}

TEST(Synthesis, VarianceOrderingPreservedAcrossConfigs) {
  // The config with the largest Table-3 cv (C8) must synthesize a larger
  // within-thread cv than the smallest (C7).
  const WorkloadMoments hi =
      measure_moments(synthesize_workload(parsec_config("C8"), 3));
  const WorkloadMoments lo =
      measure_moments(synthesize_workload(parsec_config("C7"), 3));
  EXPECT_GT(hi.cache.stddev / hi.cache.mean, lo.cache.stddev / lo.cache.mean);
}

TEST(Synthesis, DeterministicForSeed) {
  const Workload a = synthesize_workload(parsec_config("C3"), 42);
  const Workload b = synthesize_workload(parsec_config("C3"), 42);
  ASSERT_EQ(a.num_threads(), b.num_threads());
  for (std::size_t j = 0; j < a.num_threads(); ++j) {
    EXPECT_DOUBLE_EQ(a.thread(j).cache_rate, b.thread(j).cache_rate);
    EXPECT_DOUBLE_EQ(a.thread(j).memory_rate, b.thread(j).memory_rate);
  }
}

TEST(Synthesis, DifferentSeedsDiffer) {
  const Workload a = synthesize_workload(parsec_config("C3"), 1);
  const Workload b = synthesize_workload(parsec_config("C3"), 2);
  bool any_diff = false;
  for (std::size_t j = 0; j < a.num_threads(); ++j) {
    if (a.thread(j).cache_rate != b.thread(j).cache_rate) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthesis, ApplicationsSortedAscendingByLoad) {
  const Workload wl = synthesize_workload(parsec_config("C4"), 5);
  for (std::size_t a = 0; a + 1 < wl.num_applications(); ++a) {
    EXPECT_LE(wl.application(a).total_rate(),
              wl.application(a + 1).total_rate());
  }
}

TEST(Synthesis, DistinctApplicationLoads) {
  // The Global-imbalance phenomenon requires a light-vs-heavy spread.
  const Workload wl = synthesize_workload(parsec_config("C1"), 9);
  const double lightest = wl.application(0).total_rate();
  const double heaviest =
      wl.application(wl.num_applications() - 1).total_rate();
  EXPECT_GT(heaviest, 1.5 * lightest);
}

TEST(Synthesis, AllRatesNonNegative) {
  const Workload wl = synthesize_workload(parsec_config("C8"), 11);
  for (const auto& t : wl.threads()) {
    EXPECT_GE(t.cache_rate, 0.0);
    EXPECT_GE(t.memory_rate, 0.0);
  }
}

TEST(Synthesis, CacheDominatesMemoryTraffic) {
  // The paper's premise (Section IV): cache rates are several times the
  // memory-controller rates (6.78x on average).
  for (const auto& spec : parsec_table3_configs()) {
    const Workload wl = synthesize_workload(spec, 13);
    double cache = 0.0, memory = 0.0;
    for (const auto& t : wl.threads()) {
      cache += t.cache_rate;
      memory += t.memory_rate;
    }
    EXPECT_GT(cache, 3.0 * memory) << spec.name;
  }
}

TEST(Synthesis, CustomOptions) {
  SynthesisOptions opt;
  opt.num_applications = 2;
  opt.threads_per_app = 8;
  opt.app_load_multipliers = {1.0, 3.0};
  const Workload wl = synthesize_workload(parsec_config("C2"), 1, opt);
  EXPECT_EQ(wl.num_applications(), 2u);
  EXPECT_EQ(wl.num_threads(), 16u);
}

TEST(Synthesis, InvalidOptionsRejected) {
  SynthesisOptions opt;
  opt.num_applications = 0;
  EXPECT_THROW(synthesize_workload(parsec_config("C1"), 1, opt), Error);
  opt.num_applications = 4;
  opt.app_load_multipliers = {};
  EXPECT_THROW(synthesize_workload(parsec_config("C1"), 1, opt), Error);
}

TEST(MeasureMoments, HandComputed) {
  Application a;
  a.threads = {{1.0, 0.5}, {3.0, 1.5}};
  const Workload wl({a});
  const WorkloadMoments m = measure_moments(wl);
  EXPECT_DOUBLE_EQ(m.cache.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.cache.stddev, 1.0);
  EXPECT_DOUBLE_EQ(m.memory.mean, 1.0);
  EXPECT_DOUBLE_EQ(m.memory.stddev, 0.5);
}

}  // namespace
}  // namespace nocmap
