#include "core/contention.h"

#include <gtest/gtest.h>

#include "core/global_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem() {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 41));
}

/// Hand-checkable instance: one thread with memory traffic only, rest idle.
ObmProblem single_flow_problem(double memory_rate) {
  const Mesh mesh = Mesh::square(4);
  Application a;
  a.name = "one";
  a.threads = {{0.0, memory_rate}};
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload({a}).padded_to(16));
}

TEST(Contention, SingleFlowLoadsExactPath) {
  // Thread on tile (1,1); nearest MC is the (0,0) corner. XY path:
  // (1,1) -> (1,0) -> (0,0). Request 1 flit + reply 5 flits, rate 1000/kc
  // = 1 req/cycle.
  const ObmProblem p = single_flow_problem(1000.0);
  const Mesh& mesh = p.mesh();
  Mapping m = p.identity_mapping();
  std::swap(m.thread_to_tile[0], m.thread_to_tile[5]);  // thread 0 -> (1,1)
  ContentionConfig cfg;
  cfg.reply_flits = 5.0;
  const ContentionModel model(p, m, cfg);

  const TileId t11 = mesh.tile_at(1, 1);
  const TileId t10 = mesh.tile_at(1, 0);
  const TileId t00 = mesh.tile_at(0, 0);
  EXPECT_NEAR(model.link_load(t11, t10), 1.0, 1e-12);  // request leg 1
  EXPECT_NEAR(model.link_load(t10, t00), 1.0, 1e-12);  // request leg 2
  // Reply path (0,0) -> (0,1) -> (1,1): 5 flits/cycle.
  EXPECT_NEAR(model.link_load(t00, mesh.tile_at(0, 1)), 5.0, 1e-12);
  EXPECT_NEAR(model.link_load(mesh.tile_at(0, 1), t11), 5.0, 1e-12);
  // Unrelated link untouched.
  EXPECT_NEAR(model.link_load(mesh.tile_at(3, 3), mesh.tile_at(3, 2)), 0.0,
              1e-12);
}

TEST(Contention, RepliesCanBeExcluded) {
  const ObmProblem p = single_flow_problem(1000.0);
  Mapping m = p.identity_mapping();
  ContentionConfig cfg;
  cfg.include_replies = false;
  const ContentionModel model(p, m, cfg);
  // Thread 0 sits on tile 0 == the MC corner: no flow at all.
  EXPECT_NEAR(model.total_flit_hops(), 0.0, 1e-12);
}

TEST(Contention, FlitHopConservation) {
  // Total link load must equal sum over flows of rate x flits x hops.
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  ContentionConfig cfg;
  const ContentionModel model(p, m, cfg);

  const Mesh& mesh = p.mesh();
  const auto n = static_cast<double>(p.num_tiles());
  double expected = 0.0;
  for (std::size_t j = 0; j < p.num_threads(); ++j) {
    const ThreadProfile& t = p.workload().thread(j);
    const TileId s = m.tile_of(j);
    for (TileId d = 0; d < p.num_tiles(); ++d) {
      const double hops = mesh.hops(s, d);
      expected += t.cache_rate / 1000.0 / n *
                  (cfg.request_flits + cfg.reply_flits) * hops;
    }
    expected += t.memory_rate / 1000.0 *
                (cfg.request_flits + cfg.reply_flits) *
                static_cast<double>(mesh.hops(s, mesh.nearest_mc(s)));
  }
  EXPECT_NEAR(model.total_flit_hops(), expected, 1e-9);
}

TEST(Contention, LoadScalesLinearly) {
  const ObmProblem p = c1_problem();
  const Mapping m = p.identity_mapping();
  ContentionConfig c1, c2;
  c2.injection_scale = 3.0;
  const ContentionModel m1(p, m, c1);
  const ContentionModel m2(p, m, c2);
  EXPECT_NEAR(m2.max_utilization(), 3.0 * m1.max_utilization(), 1e-9);
  EXPECT_NEAR(m2.total_flit_hops(), 3.0 * m1.total_flit_hops(), 1e-9);
  EXPECT_NEAR(m1.saturation_scale(), 3.0 * m2.saturation_scale(), 1e-9);
}

TEST(Contention, QueueDelayProperties) {
  EXPECT_DOUBLE_EQ(ContentionModel::queue_delay(0.0), 0.0);
  EXPECT_NEAR(ContentionModel::queue_delay(0.5), 0.5, 1e-12);
  EXPECT_LT(ContentionModel::queue_delay(0.3),
            ContentionModel::queue_delay(0.6));
  // Clamped near capacity: finite.
  EXPECT_LT(ContentionModel::queue_delay(5.0), 1000.0);
}

TEST(Contention, MeanBelowMax) {
  const ObmProblem p = c1_problem();
  const Mapping m = p.identity_mapping();
  const ContentionModel model(p, m);
  EXPECT_LE(model.mean_utilization(), model.max_utilization() + 1e-12);
  EXPECT_GT(model.max_utilization(), 0.0);
}

// The model must predict the simulator: td_q estimate within the right
// order of magnitude at paper loads, and the saturation knee near the
// predicted scale.
TEST(Contention, PredictsMeasuredQueuingOrderOfMagnitude) {
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  const ContentionModel model(p, m);

  SimConfig cfg;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 30000;
  const SimResult r = run_simulation(p, m, cfg);
  const double measured = r.activity.avg_queue_wait();
  const double predicted = model.predicted_td_q();
  EXPECT_GT(predicted, measured * 0.2);
  EXPECT_LT(predicted, measured * 5.0 + 0.2);
}

TEST(Contention, SaturationScaleBracketsSimulatedKnee) {
  const ObmProblem p = c1_problem();
  SortSelectSwapMapper sss;
  const Mapping m = sss.map(p);
  const double predicted = ContentionModel(p, m).saturation_scale();

  // Below half the predicted scale the network must still be fluid; well
  // above it, clearly saturated (latency an order of magnitude up).
  auto g_apl_at = [&](double scale) {
    SimConfig cfg;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 15000;
    cfg.traffic.injection_scale = scale;
    return run_simulation(p, m, cfg).g_apl;
  };
  const double fluid = g_apl_at(predicted * 0.4);
  const double saturated = g_apl_at(predicted * 3.0);
  EXPECT_LT(fluid, 60.0);
  EXPECT_GT(saturated, 3.0 * fluid);
}

TEST(Contention, ExpectedPacketQueuingSumsPath) {
  const ObmProblem p = single_flow_problem(1000.0);
  const Mesh& mesh = p.mesh();
  Mapping m = p.identity_mapping();
  std::swap(m.thread_to_tile[0], m.thread_to_tile[5]);
  const ContentionModel model(p, m);
  const double along =
      model.expected_packet_queuing(mesh.tile_at(1, 1), mesh.tile_at(0, 0));
  const double hop1 = ContentionModel::queue_delay(
      model.link_load(mesh.tile_at(1, 1), mesh.tile_at(1, 0)));
  const double hop2 = ContentionModel::queue_delay(
      model.link_load(mesh.tile_at(1, 0), mesh.tile_at(0, 0)));
  EXPECT_NEAR(along, hop1 + hop2, 1e-12);
  EXPECT_DOUBLE_EQ(model.expected_packet_queuing(3, 3), 0.0);
}

TEST(Contention, InvalidInputsRejected) {
  const ObmProblem p = c1_problem();
  Mapping bad;
  bad.thread_to_tile.assign(p.num_threads(), 0);
  EXPECT_THROW(ContentionModel(p, bad), Error);
  ContentionConfig cfg;
  cfg.injection_scale = 0.0;
  EXPECT_THROW(ContentionModel(p, p.identity_mapping(), cfg), Error);
}

}  // namespace
}  // namespace nocmap
