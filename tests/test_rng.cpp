#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace nocmap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformU32RespectsBound) {
  Rng rng(3);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u32(bound), bound);
    }
  }
}

TEST(Rng, UniformU32CoversAllValues) {
  Rng rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_u32(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformU32ZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u32(0), Error);
}

TEST(Rng, UniformIntRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalNegativeStddevThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), Error);
  EXPECT_THROW(rng.bernoulli(-0.1), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be equal
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIndependence) {
  const Rng base(47);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkDeterministic) {
  const Rng base(53);
  Rng a = base.fork(9);
  Rng b = base.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Permutations, IdentityIsSortedRange) {
  const auto p = identity_permutation(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(p[i], i);
}

TEST(Permutations, RandomPermutationIsPermutation) {
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    auto p = random_permutation(64, rng);
    std::sort(p.begin(), p.end());
    EXPECT_EQ(p, identity_permutation(64));
  }
}

// A uniform shuffle should put element 0 in every slot equally often.
TEST(Permutations, RoughUniformity) {
  Rng rng(61);
  const std::size_t n = 8;
  std::vector<int> slot_counts(n, 0);
  const int trials = 80000;
  for (int t = 0; t < trials; ++t) {
    const auto p = random_permutation(n, rng);
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] == 0) ++slot_counts[i];
    }
  }
  const double expected = static_cast<double>(trials) / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(slot_counts[i], expected, expected * 0.08);
  }
}

}  // namespace
}  // namespace nocmap
