// Property tests for the allocation-free assignment kernel: CostView
// indexing, workspace solves vs. the brute-force reference on adversarial
// cost families, warm-start == cold-start assignment identity, rectangular
// solves, and the ThreadCostCache prefix-sum / lazy-view plumbing.
#include "assign/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sam.h"
#include "util/rng.h"

namespace nocmap {
namespace {

CostMatrix random_matrix(std::size_t n, Rng& rng, double lo = 0.0,
                         double hi = 10.0) {
  CostMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.uniform(lo, hi);
  }
  return m;
}

bool is_valid_partial_assignment(const std::vector<std::size_t>& p,
                                 std::size_t num_cols) {
  std::vector<char> seen(num_cols, 0);
  for (std::size_t c : p) {
    if (c >= num_cols || seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

TEST(CostView, DenseViewMatchesMatrix) {
  Rng rng(11);
  const CostMatrix m = random_matrix(5, rng);
  const CostView v = CostView::of(m);
  ASSERT_EQ(v.rows(), 5u);
  ASSERT_EQ(v.cols(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(v.at(r, c), m.at(r, c));
    }
  }
}

TEST(CostView, GatherReadsStridedColumns) {
  // A 3×8 table viewed as 2 rows × 3 gathered columns.
  std::vector<double> table(3 * 8);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<double>(i);
  }
  const std::vector<std::uint32_t> cols{7, 2, 5};
  const CostView v(table.data(), 2, cols.size(), 8, cols.data());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      EXPECT_DOUBLE_EQ(v.at(r, c), table[r * 8 + cols[c]]);
    }
  }
}

TEST(CostView, WiderThanStrideRejected) {
  std::vector<double> table(8, 0.0);
  EXPECT_THROW(CostView(table.data(), 2, 4, 2), Error);
}

TEST(Workspace, MoreRowsThanColsRejected) {
  std::vector<double> table(6, 0.0);
  const CostView v(table.data(), 3, 2, 2);
  AssignmentWorkspace ws;
  EXPECT_THROW(ws.solve(v), Error);
}

// Adversarial cost families where tie-breaking and degeneracy bite: the
// workspace (cold and warm) must match the exhaustive optimum on all of
// them. Assignments may legitimately differ between solvers on ties, so the
// comparison is on total cost.
class KernelAdversarialProperty : public ::testing::TestWithParam<int> {};

TEST_P(KernelAdversarialProperty, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 101);
  const std::size_t n = 2 + GetParam() % 7;  // sizes 2..8

  std::vector<CostMatrix> family;
  // Heavily tied costs: entries from a three-value set.
  {
    CostMatrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.at(r, c) = static_cast<double>(rng.uniform_u32(3));
      }
    }
    family.push_back(m);
  }
  // Duplicate rows: two identical threads competing for the same tiles.
  {
    CostMatrix m = random_matrix(n, rng);
    const std::size_t src = rng.uniform_u32(static_cast<std::uint32_t>(n));
    const std::size_t dst = rng.uniform_u32(static_cast<std::uint32_t>(n));
    for (std::size_t c = 0; c < n; ++c) m.at(dst, c) = m.at(src, c);
    family.push_back(m);
  }
  // Zero traffic: the all-zero matrix (any permutation optimal at 0).
  family.push_back(CostMatrix(n, n, 0.0));
  // Near-degenerate: a constant matrix with perturbations at the edge of
  // double precision.
  {
    CostMatrix m(n, n, 5.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.at(r, c) += rng.uniform(0.0, 1e-12);
      }
    }
    family.push_back(m);
  }

  AssignmentWorkspace ws;
  for (const CostMatrix& m : family) {
    const Assignment reference = solve_assignment_brute_force(m);
    const Assignment cold = ws.solve(CostView::of(m));
    EXPECT_TRUE(is_valid_partial_assignment(cold.row_to_col, n));
    EXPECT_NEAR(cold.total_cost, reference.total_cost, 1e-9);
    // Warm solve seeded by whatever the previous family member left behind
    // (same width, different costs): optimality must be unaffected.
    const Assignment warm = ws.solve_warm(CostView::of(m));
    EXPECT_TRUE(is_valid_partial_assignment(warm.row_to_col, n));
    EXPECT_NEAR(warm.total_cost, reference.total_cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelAdversarialProperty,
                         ::testing::Range(0, 28));

// Warm-start determinism: on continuous random costs (unique optimum with
// probability one) the warm solve must return the *identical* assignment as
// a cold solve, across 20 seeds, even when the inherited potentials come
// from an unrelated instance. The built-in cross-check re-runs each warm
// solve cold in a shadow workspace and throws on any divergence.
class WarmColdIdentityProperty : public ::testing::TestWithParam<int> {};

TEST_P(WarmColdIdentityProperty, WarmAssignmentIdenticalToCold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 19);
  const std::size_t n = 12;
  const CostMatrix target = random_matrix(n, rng);
  const CostMatrix pollutant = random_matrix(n, rng);

  AssignmentWorkspace cold_ws;
  const Assignment cold = cold_ws.solve(CostView::of(target));

  AssignmentWorkspace warm_ws;
  warm_ws.set_cross_check(true);
  warm_ws.solve(CostView::of(pollutant));  // leave non-trivial potentials
  const Assignment& warm = warm_ws.solve_warm(CostView::of(target));

  EXPECT_EQ(warm.row_to_col, cold.row_to_col);
  EXPECT_NEAR(warm.total_cost, cold.total_cost, 1e-9);

  // Re-solving the identical instance warm is the SSS steady state; it must
  // also reproduce the assignment exactly.
  const Assignment& again = warm_ws.solve_warm(CostView::of(target));
  EXPECT_EQ(again.row_to_col, cold.row_to_col);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmColdIdentityProperty,
                         ::testing::Range(0, 20));

TEST(Workspace, InvalidateForcesColdPath) {
  Rng rng(77);
  const CostMatrix a = random_matrix(6, rng);
  const CostMatrix b = random_matrix(6, rng);

  AssignmentWorkspace ws;
  ws.solve(CostView::of(a));
  ws.invalidate();
  const Assignment after = ws.solve_warm(CostView::of(b));

  AssignmentWorkspace fresh;
  const Assignment cold = fresh.solve(CostView::of(b));
  EXPECT_EQ(after.row_to_col, cold.row_to_col);
  EXPECT_DOUBLE_EQ(after.total_cost, cold.total_cost);
}

// Rectangular rows < cols: the kernel leaves surplus columns unmatched.
// Ground truth is the classic reduction — pad with zero-cost dummy rows and
// solve square.
class RectangularProperty : public ::testing::TestWithParam<int> {};

TEST_P(RectangularProperty, MatchesZeroPaddedSquare) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 3);
  const std::size_t rows = 2 + GetParam() % 3;  // 2..4
  const std::size_t cols = rows + 1 + GetParam() % 4;

  std::vector<double> table(rows * cols);
  for (double& x : table) x = rng.uniform(0.0, 10.0);

  AssignmentWorkspace ws;
  const Assignment rect =
      ws.solve(CostView(table.data(), rows, cols, cols));
  EXPECT_EQ(rect.row_to_col.size(), rows);
  EXPECT_TRUE(is_valid_partial_assignment(rect.row_to_col, cols));

  CostMatrix padded(cols, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      padded.at(r, c) = table[r * cols + c];
    }
  }
  const Assignment reference = solve_assignment_brute_force(padded);
  EXPECT_NEAR(rect.total_cost, reference.total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectangularProperty, ::testing::Range(0, 12));

TEST(Workspace, ReusableAcrossChangingSizes) {
  Rng rng(5);
  AssignmentWorkspace ws;
  for (std::size_t n : {5u, 3u, 8u, 4u, 8u}) {
    const CostMatrix m = random_matrix(n, rng);
    const Assignment got = ws.solve(CostView::of(m));
    const Assignment want = solve_assignment_brute_force(m);
    EXPECT_NEAR(got.total_cost, want.total_cost, 1e-9) << "n=" << n;
    EXPECT_TRUE(is_valid_partial_assignment(got.row_to_col, n));
  }
}

// ---- ThreadCostCache plumbing -------------------------------------------

Workload random_workload(Rng& rng, std::size_t threads_a,
                         std::size_t threads_b) {
  Application a{"a", {}};
  Application b{"b", {}};
  for (std::size_t j = 0; j < threads_a; ++j) {
    a.threads.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 2.0)});
  }
  for (std::size_t j = 0; j < threads_b; ++j) {
    b.threads.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 2.0)});
  }
  return Workload({a, b});
}

TEST(ThreadCostCache, RateSumMatchesDirectSummation) {
  Rng rng(42);
  const Workload wl = random_workload(rng, 7, 9);
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, LatencyParams{});
  const ThreadCostCache cache(wl, model);

  for (std::size_t first = 0; first < wl.num_threads(); ++first) {
    for (std::size_t count = 0; first + count <= wl.num_threads(); ++count) {
      double direct = 0.0;
      for (std::size_t j = first; j < first + count; ++j) {
        direct += wl.thread(j).total_rate();
      }
      EXPECT_NEAR(cache.rate_sum(first, count), direct, 1e-12);
    }
  }
}

TEST(ThreadCostCache, SamViewAgreesWithSamMatrix) {
  Rng rng(9);
  const Workload wl = random_workload(rng, 6, 5);
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, LatencyParams{});
  const ThreadCostCache cache(wl, model);

  const std::size_t lo = wl.first_thread(1);
  const std::vector<TileId> tiles{14, 3, 9, 0, 7};
  const CostView view = cache.sam_view(lo, tiles);
  const CostMatrix matrix = cache.sam_matrix(lo, tiles);

  ASSERT_EQ(view.rows(), matrix.rows());
  ASSERT_EQ(view.cols(), matrix.cols());
  for (std::size_t r = 0; r < view.rows(); ++r) {
    for (std::size_t c = 0; c < view.cols(); ++c) {
      EXPECT_DOUBLE_EQ(view.at(r, c), matrix.at(r, c));
    }
  }

  AssignmentWorkspace ws;
  const Assignment via_view = ws.solve(view);
  const Assignment via_matrix = solve_assignment(matrix);
  EXPECT_EQ(via_view.row_to_col, via_matrix.row_to_col);
  EXPECT_NEAR(via_view.total_cost, via_matrix.total_cost, 1e-9);
}

TEST(Sam, WorkspaceOverloadMatchesClassicPath) {
  Rng rng(31);
  const Workload wl = random_workload(rng, 8, 6);
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, LatencyParams{});
  const ThreadCostCache cache(wl, model);

  const std::size_t lo = wl.first_thread(0);
  const std::vector<TileId> tiles{2, 13, 5, 8, 11, 1, 15, 4};
  const SamResult classic = solve_sam(cache, lo, tiles);

  AssignmentWorkspace ws;
  const SamResult cold = solve_sam(cache, lo, tiles, ws);
  EXPECT_EQ(cold.tiles, classic.tiles);
  EXPECT_NEAR(cold.apl, classic.apl, 1e-9);

  // Warm re-solves of the same site must keep returning the same answer.
  for (int pass = 0; pass < 3; ++pass) {
    const SamResult warm = solve_sam(cache, lo, tiles, ws, /*warm=*/true);
    EXPECT_EQ(warm.tiles, classic.tiles);
    EXPECT_NEAR(warm.apl, classic.apl, 1e-9);
  }
}

}  // namespace
}  // namespace nocmap
