// Weighted-OBM (QoS) extension tests: min max_i w_i·APL_i generalizes the
// paper's objective; weights express differentiated service (Section I's
// paying-users motivation).
#include <gtest/gtest.h>

#include "core/annealing_mapper.h"
#include "core/evaluator.h"
#include "core/exact_solver.h"
#include "core/bounds.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

Workload c1_workload(std::uint64_t seed = 31) {
  return synthesize_workload(parsec_config("C1"), seed);
}

TileLatencyModel chip8() {
  return TileLatencyModel(Mesh::square(8), LatencyParams{});
}

TEST(QosWeights, DefaultsToUnweighted) {
  const ObmProblem p(chip8(), c1_workload());
  EXPECT_FALSE(p.is_weighted());
  for (std::size_t a = 0; a < p.num_applications(); ++a) {
    EXPECT_DOUBLE_EQ(p.app_weight(a), 1.0);
  }
}

TEST(QosWeights, ValidationRejectsBadWeights) {
  EXPECT_THROW(ObmProblem(chip8(), c1_workload(), {1.0, 1.0}), Error);
  EXPECT_THROW(ObmProblem(chip8(), c1_workload(), {1.0, 1.0, 1.0, 0.0}),
               Error);
  EXPECT_THROW(ObmProblem(chip8(), c1_workload(), {1.0, 1.0, 1.0, -2.0}),
               Error);
}

TEST(QosWeights, ObjectiveEqualsMaxAplWhenUnweighted) {
  const ObmProblem p(chip8(), c1_workload());
  SortSelectSwapMapper sss;
  const LatencyReport r = evaluate(p, sss.map(p));
  EXPECT_DOUBLE_EQ(r.objective, r.max_apl);
}

TEST(QosWeights, ObjectiveIsWeightedMax) {
  const std::vector<double> w{3.0, 1.0, 1.0, 1.0};
  const ObmProblem p(chip8(), c1_workload(), w);
  EXPECT_TRUE(p.is_weighted());
  const Mapping m = p.identity_mapping();
  const LatencyReport r = evaluate(p, m);
  double expected = 0.0;
  for (std::size_t a = 0; a < 4; ++a) {
    expected = std::max(expected, w[a] * r.apl[a]);
  }
  EXPECT_NEAR(r.objective, expected, 1e-12);
}

TEST(QosWeights, EvaluatorObjectiveMatchesEvaluate) {
  const ObmProblem p(chip8(), c1_workload(), {2.0, 1.0, 1.5, 1.0});
  const MappingEvaluator eval(p, p.identity_mapping());
  const LatencyReport r = evaluate(p, p.identity_mapping());
  EXPECT_NEAR(eval.objective(), r.objective, 1e-9);
  EXPECT_NEAR(eval.max_apl(), r.max_apl, 1e-9);
}

// The core QoS property: giving one application a higher weight buys it a
// lower APL than it gets in the unweighted solution.
TEST(QosWeights, HigherWeightBuysLowerApl) {
  const Workload wl = c1_workload();
  const ObmProblem plain(chip8(), wl);
  const ObmProblem priority(chip8(), wl, {3.0, 1.0, 1.0, 1.0});

  SortSelectSwapMapper sss;
  const LatencyReport r_plain = evaluate(plain, sss.map(plain));
  // Evaluate the weighted solution with the *plain* problem to compare raw
  // APLs (the workload/mesh are identical).
  const Mapping m_priority = sss.map(priority);
  const LatencyReport r_priority = evaluate(plain, m_priority);

  EXPECT_LT(r_priority.apl[0], r_plain.apl[0]);
}

TEST(QosWeights, AnnealerOptimizesWeightedObjective) {
  const Workload wl = c1_workload();
  const ObmProblem priority(chip8(), wl, {3.0, 1.0, 1.0, 1.0});
  AnnealingMapper sa(AnnealingParams{.iterations = 30000, .seed = 5});
  const LatencyReport r = evaluate(priority, sa.map(priority));
  // At a good weighted optimum the weighted APLs roughly equalize: app 0's
  // raw APL must be well below the others'.
  EXPECT_LT(r.apl[0], r.apl[1]);
  EXPECT_LT(r.apl[0], r.apl[3]);
}

TEST(QosWeights, MonteCarloUsesWeightedObjective) {
  const Workload wl = c1_workload();
  const ObmProblem priority(chip8(), wl, {3.0, 1.0, 1.0, 1.0});
  MonteCarloMapper mc(3000, 7);
  const LatencyReport r = evaluate(priority, mc.map(priority));
  EXPECT_LT(r.apl[0], r.apl[3]);
}

TEST(QosWeights, ExactSolverRespectsWeights) {
  // Small instance: 2 apps, the weighted optimum must shift latency toward
  // the low-weight app.
  const Mesh mesh(2, 4, {0});
  const TileLatencyModel model(mesh, LatencyParams{});
  std::vector<Application> apps(2);
  for (auto& a : apps) {
    a.threads.assign(4, ThreadProfile{2.0, 0.2});
  }
  const Workload wl(std::move(apps));
  const ObmProblem plain(model, wl);
  const ObmProblem weighted(model, wl, {2.0, 1.0});

  const ExactResult e_plain = solve_obm_exact(plain);
  const ExactResult e_weighted = solve_obm_exact(weighted);
  ASSERT_TRUE(e_plain.proven_optimal);
  ASSERT_TRUE(e_weighted.proven_optimal);

  const LatencyReport r_plain = evaluate(plain, e_plain.mapping);
  const LatencyReport r_weighted = evaluate(plain, e_weighted.mapping);
  EXPECT_LE(r_weighted.apl[0], r_plain.apl[0] + 1e-9);
}

TEST(QosWeights, LowerBoundStillValidUnderWeights) {
  const ObmProblem p(chip8(), c1_workload(), {2.0, 1.0, 1.0, 1.5});
  SortSelectSwapMapper sss;
  const double achieved = evaluate(p, sss.map(p)).objective;
  EXPECT_LE(max_apl_lower_bound(p), achieved + 1e-9);
}

}  // namespace
}  // namespace nocmap
