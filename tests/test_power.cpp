#include "power/dsent_lite.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nocmap {
namespace {

ActivityCounters sample_activity() {
  ActivityCounters a;
  a.buffer_writes = 1000;
  a.buffer_reads = 1000;
  a.crossbar_traversals = 1000;
  a.link_traversals = 800;
  a.sw_arbitrations = 1000;
  a.vc_allocations = 300;
  return a;
}

TEST(DsentLite, EnergyIsLinearInActivity) {
  const DsentLitePowerModel model;
  const ActivityCounters a = sample_activity();
  ActivityCounters doubled = a;
  doubled += a;
  EXPECT_NEAR(model.dynamic_energy_pj(doubled),
              2.0 * model.dynamic_energy_pj(a), 1e-9);
}

TEST(DsentLite, HandComputedEnergy) {
  PowerParams p;
  p.buffer_write_pj = 1.0;
  p.buffer_read_pj = 1.0;
  p.crossbar_pj = 2.0;
  p.sw_arbiter_pj = 0.5;
  p.vc_arbiter_pj = 0.5;
  p.link_pj = 3.0;
  const DsentLitePowerModel model(p);
  ActivityCounters a;
  a.buffer_writes = 10;
  a.buffer_reads = 10;
  a.crossbar_traversals = 10;
  a.link_traversals = 10;
  a.sw_arbitrations = 10;
  a.vc_allocations = 10;
  // 10*(1+1+2+0.5+0.5+3) = 80 pJ
  EXPECT_NEAR(model.dynamic_energy_pj(a), 80.0, 1e-12);
}

TEST(DsentLite, ReportUnitsAreMilliwatts) {
  // 1000 pJ over 2000 cycles at 2 GHz: 1000 pJ / 1 us = 1 mW.
  PowerParams p;
  p.buffer_write_pj = 1.0;
  p.buffer_read_pj = 0.0;
  p.crossbar_pj = 0.0;
  p.sw_arbiter_pj = 0.0;
  p.vc_arbiter_pj = 0.0;
  p.link_pj = 0.0;
  p.clock_ghz = 2.0;
  const DsentLitePowerModel model(p);
  ActivityCounters a;
  a.buffer_writes = 1000;
  const PowerReport r = model.report(a, 2000, 0, 0);
  EXPECT_NEAR(r.buffer_mw, 1.0, 1e-12);
  EXPECT_NEAR(r.dynamic_mw, 1.0, 1e-12);
}

TEST(DsentLite, BreakdownSumsToDynamic) {
  const DsentLitePowerModel model;
  const PowerReport r = model.report(sample_activity(), 10000, 64, 224);
  EXPECT_NEAR(r.dynamic_mw,
              r.buffer_mw + r.crossbar_mw + r.arbiter_mw + r.link_mw, 1e-12);
  EXPECT_NEAR(r.total_mw, r.dynamic_mw + r.static_mw, 1e-12);
}

TEST(DsentLite, StaticPowerScalesWithTopology) {
  const DsentLitePowerModel model;
  const ActivityCounters a = sample_activity();
  const PowerReport small = model.report(a, 1000, 16, 48);
  const PowerReport large = model.report(a, 1000, 64, 224);
  EXPECT_GT(large.static_mw, small.static_mw);
  EXPECT_NEAR(small.static_mw,
              16 * model.params().router_leakage_mw +
                  48 * model.params().link_leakage_mw,
              1e-9);
}

TEST(DsentLite, LongerWindowLowersPower) {
  const DsentLitePowerModel model;
  const ActivityCounters a = sample_activity();
  const PowerReport short_window = model.report(a, 1000, 64, 224);
  const PowerReport long_window = model.report(a, 2000, 64, 224);
  EXPECT_NEAR(long_window.dynamic_mw, short_window.dynamic_mw / 2.0, 1e-9);
}

TEST(DsentLite, EmptyWindowRejected) {
  const DsentLitePowerModel model;
  EXPECT_THROW(model.report(sample_activity(), 0, 64, 224), Error);
}

TEST(MeshLinkCount, KnownTopologies) {
  EXPECT_EQ(mesh_link_count(Mesh::square(8)), 224u);  // 2*(8*7)*2
  EXPECT_EQ(mesh_link_count(Mesh::square(4)), 48u);
  EXPECT_EQ(mesh_link_count(Mesh::square(2)), 8u);
}

TEST(ActivityCounters, PlusEqualsAccumulates) {
  ActivityCounters a = sample_activity();
  const ActivityCounters b = sample_activity();
  a += b;
  EXPECT_EQ(a.buffer_writes, 2000u);
  EXPECT_EQ(a.link_traversals, 1600u);
  EXPECT_EQ(a.vc_allocations, 600u);
}

}  // namespace
}  // namespace nocmap
