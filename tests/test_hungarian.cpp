#include "assign/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace nocmap {
namespace {

bool is_permutation_of_range(const std::vector<std::size_t>& p) {
  std::vector<char> seen(p.size(), 0);
  for (std::size_t c : p) {
    if (c >= p.size() || seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

TEST(CostMatrix, StorageAndAccess) {
  CostMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -4.0);
}

TEST(CostMatrix, EmptyRejected) { EXPECT_THROW(CostMatrix(0, 3), Error); }

TEST(Hungarian, TrivialOneByOne) {
  CostMatrix m(1, 1);
  m.at(0, 0) = 7.0;
  const Assignment a = solve_assignment(m);
  EXPECT_EQ(a.row_to_col, std::vector<std::size_t>{0});
  EXPECT_DOUBLE_EQ(a.total_cost, 7.0);
}

TEST(Hungarian, KnownTwoByTwo) {
  // Choosing the diagonal costs 1+1=2; anti-diagonal costs 100+100.
  CostMatrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 100.0;
  m.at(1, 0) = 100.0;
  m.at(1, 1) = 1.0;
  const Assignment a = solve_assignment(m);
  EXPECT_EQ(a.row_to_col[0], 0u);
  EXPECT_EQ(a.row_to_col[1], 1u);
  EXPECT_DOUBLE_EQ(a.total_cost, 2.0);
}

TEST(Hungarian, ClassicTextbookInstance) {
  // Well-known 3x3 instance with optimum 6 (1-2-3 anti-diagonal variants).
  CostMatrix m(3, 3);
  const double vals[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = vals[r][c];
  }
  const Assignment a = solve_assignment(m);
  EXPECT_DOUBLE_EQ(a.total_cost, 5.0);  // 1 + 2 + 2
  EXPECT_TRUE(is_permutation_of_range(a.row_to_col));
}

TEST(Hungarian, NonSquareRejected) {
  CostMatrix m(2, 3);
  EXPECT_THROW(solve_assignment(m), Error);
}

TEST(Hungarian, HandlesNegativeCosts) {
  CostMatrix m(2, 2);
  m.at(0, 0) = -5.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = -5.0;
  const Assignment a = solve_assignment(m);
  EXPECT_DOUBLE_EQ(a.total_cost, -10.0);
}

TEST(Hungarian, TiesStillProduceValidPermutation) {
  CostMatrix m(4, 4, 1.0);  // all equal: any permutation optimal
  const Assignment a = solve_assignment(m);
  EXPECT_TRUE(is_permutation_of_range(a.row_to_col));
  EXPECT_DOUBLE_EQ(a.total_cost, 4.0);
}

TEST(BruteForce, MatchesManualEnumeration) {
  CostMatrix m(2, 2);
  m.at(0, 0) = 3.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 9.0;
  const Assignment a = solve_assignment_brute_force(m);
  EXPECT_DOUBLE_EQ(a.total_cost, 3.0);  // 1 + 2
  EXPECT_EQ(a.row_to_col[0], 1u);
  EXPECT_EQ(a.row_to_col[1], 0u);
}

TEST(BruteForce, SizeLimitEnforced) {
  CostMatrix m(11, 11);
  EXPECT_THROW(solve_assignment_brute_force(m), Error);
}

TEST(AssignmentCost, ComputesAndValidates) {
  CostMatrix m(2, 2);
  m.at(0, 1) = 4.0;
  m.at(1, 0) = 6.0;
  EXPECT_DOUBLE_EQ(assignment_cost(m, {1, 0}), 10.0);
  EXPECT_THROW(assignment_cost(m, {0}), Error);
#ifndef NDEBUG
  // Per-element column validation is NOCMAP_ASSERT-only (hot-loop helper):
  // it throws in debug builds and is compiled out under NDEBUG, where an
  // out-of-range column would be undefined behaviour — so only exercise it
  // when the check exists.
  EXPECT_THROW(assignment_cost(m, {0, 5}), Error);
#endif
}

// Property: Hungarian == brute force on random instances.
class HungarianRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomProperty, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const std::size_t n = 2 + GetParam() % 6;  // sizes 2..7
  CostMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.at(r, c) = rng.uniform(-10.0, 10.0);
    }
  }
  const Assignment fast = solve_assignment(m);
  const Assignment slow = solve_assignment_brute_force(m);
  EXPECT_TRUE(is_permutation_of_range(fast.row_to_col));
  EXPECT_NEAR(fast.total_cost, slow.total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HungarianRandomProperty,
                         ::testing::Range(0, 40));

// Property: the Hungarian solution is no worse than many random
// permutations on larger instances where brute force is infeasible.
TEST(Hungarian, BeatsRandomPermutationsOnLargeInstance) {
  Rng rng(123);
  const std::size_t n = 64;
  CostMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.at(r, c) = rng.uniform(0.0, 100.0);
    }
  }
  const Assignment opt = solve_assignment(m);
  for (int trial = 0; trial < 200; ++trial) {
    const auto perm = random_permutation(n, rng);
    EXPECT_LE(opt.total_cost, assignment_cost(m, perm) + 1e-9);
  }
}

// Dual-feasibility sanity: optimal cost is invariant under row shifts
// (adding a constant to a row shifts every assignment equally).
TEST(Hungarian, RowShiftInvariance) {
  Rng rng(321);
  const std::size_t n = 8;
  CostMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.uniform(0.0, 9.0);
  }
  const Assignment base = solve_assignment(m);
  CostMatrix shifted = m;
  for (std::size_t c = 0; c < n; ++c) shifted.at(3, c) += 42.0;
  const Assignment moved = solve_assignment(shifted);
  EXPECT_NEAR(moved.total_cost, base.total_cost + 42.0, 1e-9);
}

}  // namespace
}  // namespace nocmap
