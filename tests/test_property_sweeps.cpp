// Cross-cutting property sweeps: the core invariants must hold for every
// mesh size, application count, topology and MC placement — not just the
// paper's 8x8 / 4-app configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

struct SweepCase {
  std::uint32_t side;
  std::size_t apps;
  bool torus;
  McPlacement placement;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string s = std::to_string(c.side) + "x" + std::to_string(c.side) +
                  "_" + std::to_string(c.apps) + "apps";
  s += c.torus ? "_torus" : "_mesh";
  switch (c.placement) {
    case McPlacement::kCorners: s += "_corners"; break;
    case McPlacement::kEdgeMiddles: s += "_edges"; break;
    case McPlacement::kDiamond: s += "_diamond"; break;
  }
  return s;
}

class TopologySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  ObmProblem make_problem() const {
    const SweepCase& c = GetParam();
    Mesh mesh = c.torus
                    ? Mesh::square_torus(c.side)
                    : Mesh::square_with_placement(c.side, c.placement);
    SynthesisOptions opt;
    opt.num_applications = c.apps;
    opt.threads_per_app = mesh.num_tiles() / c.apps;
    std::vector<double> mults;
    for (std::size_t a = 0; a < c.apps; ++a) {
      mults.push_back(0.25 + 1.5 * static_cast<double>(a) /
                                 static_cast<double>(c.apps - 1));
    }
    opt.app_load_multipliers = mults;
    Workload wl = synthesize_workload(parsec_config("C1"), 71, opt);
    wl = wl.padded_to(mesh.num_tiles());
    return ObmProblem(TileLatencyModel(std::move(mesh), LatencyParams{}),
                      std::move(wl));
  }
};

TEST_P(TopologySweep, AllMappersValid) {
  const ObmProblem p = make_problem();
  GlobalMapper global;
  SortSelectSwapMapper sss;
  MonteCarloMapper mc(300, 1);
  EXPECT_TRUE(global.map(p).is_valid_permutation(p.num_threads()));
  EXPECT_TRUE(sss.map(p).is_valid_permutation(p.num_threads()));
  EXPECT_TRUE(mc.map(p).is_valid_permutation(p.num_threads()));
}

TEST_P(TopologySweep, GlobalIsGaplOptimal) {
  const ObmProblem p = make_problem();
  GlobalMapper global;
  SortSelectSwapMapper sss;
  const double g = evaluate(p, global.map(p)).g_apl;
  EXPECT_LE(g, evaluate(p, sss.map(p)).g_apl + 1e-9);
  EXPECT_NEAR(g, optimal_gapl(p), 1e-9);
}

TEST_P(TopologySweep, SssRespectsLowerBound) {
  const ObmProblem p = make_problem();
  SortSelectSwapMapper sss;
  const double achieved = evaluate(p, sss.map(p)).max_apl;
  EXPECT_GE(achieved, max_apl_lower_bound(p) - 1e-9);
}

TEST_P(TopologySweep, SssNeverWorseThanSelectOnly) {
  const ObmProblem p = make_problem();
  SortSelectSwapMapper full;
  SortSelectSwapMapper select_only(
      SssOptions{.window_swaps = false, .final_sam = false});
  EXPECT_LE(evaluate(p, full.map(p)).max_apl,
            evaluate(p, select_only.map(p)).max_apl + 1e-9);
}

TEST_P(TopologySweep, EvaluatorConsistentAfterSwapStorm) {
  const ObmProblem p = make_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  Rng rng(17);
  const auto n = static_cast<std::uint32_t>(p.num_threads());
  for (int i = 0; i < 200; ++i) {
    eval.swap_threads(rng.uniform_u32(n), rng.uniform_u32(n));
  }
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopologySweep,
    ::testing::Values(
        SweepCase{4, 2, false, McPlacement::kCorners},
        SweepCase{4, 4, false, McPlacement::kCorners},
        SweepCase{6, 3, false, McPlacement::kEdgeMiddles},
        SweepCase{6, 4, true, McPlacement::kCorners},
        SweepCase{8, 4, false, McPlacement::kCorners},
        SweepCase{8, 8, false, McPlacement::kDiamond},
        SweepCase{8, 4, true, McPlacement::kCorners},
        SweepCase{10, 5, false, McPlacement::kEdgeMiddles},
        SweepCase{12, 4, false, McPlacement::kCorners},
        SweepCase{12, 6, false, McPlacement::kDiamond}),
    case_name);

// Balance property across the board: on every *mesh* case SSS must beat
// Global on dev-APL (tori are excluded: TC is uniform there, so Global is
// not necessarily imbalanced).
class MeshBalanceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MeshBalanceSweep, SssBalancesBetterThanGlobal) {
  const SweepCase& c = GetParam();
  Mesh mesh = Mesh::square_with_placement(c.side, c.placement);
  SynthesisOptions opt;
  opt.num_applications = c.apps;
  opt.threads_per_app = mesh.num_tiles() / c.apps;
  const ObmProblem p(
      TileLatencyModel(std::move(mesh), LatencyParams{}),
      synthesize_workload(parsec_config("C1"), 73, opt)
          .padded_to(static_cast<std::size_t>(c.side) * c.side));
  GlobalMapper global;
  SortSelectSwapMapper sss;
  const LatencyReport rg = evaluate(p, global.map(p));
  const LatencyReport rs = evaluate(p, sss.map(p));
  EXPECT_LT(rs.dev_apl, rg.dev_apl);
  EXPECT_LE(rs.max_apl, rg.max_apl + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MeshBalanceSweep,
    ::testing::Values(SweepCase{6, 2, false, McPlacement::kCorners},
                      SweepCase{8, 4, false, McPlacement::kCorners},
                      SweepCase{8, 4, false, McPlacement::kEdgeMiddles},
                      SweepCase{10, 4, false, McPlacement::kCorners},
                      SweepCase{12, 4, false, McPlacement::kCorners}),
    case_name);

}  // namespace
}  // namespace nocmap
